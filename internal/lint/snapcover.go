package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// Snapcover proves snapshot completeness: for every type that serializes
// itself — a SaveState/saveState method taking the codec writer, or a
// configured save helper (Config.SnapSaveFuncs) taking the struct as a
// parameter — each field of the struct must be accounted for in one of
// three ways, or the build fails:
//
//  1. written by the save function or a helper it (transitively) calls;
//  2. rebuilt by the load counterpart: assigned (or constructed via a
//     composite literal) from an expression that does not consume the
//     reader — rebound callbacks, derived counters, registration state;
//  3. read by the load counterpart — construction-owned state the restore
//     path consults without reassigning (pre-bound method values, the
//     owning Network/Queue references threaded through restore).
//
// A field that is none of these is invisible to snapshots: a fork or a
// warm-started sweep silently diverges from the cold run the first time
// the field matters. The escape hatch is an explicit annotation on the
// field's declaration line: //acclint:ignore snapcover <reason>.
// Function-valued fields (pre-bound callbacks, clock sources, hook lists)
// are exempt implicitly: a function value has no serializable identity and
// can only be rebound at construction.
//
// Deliberately NOT counted as coverage: a load-side assignment whose
// right side consumes the reader. That is symmetric-load, not rebuild —
// if the save-side write is deleted while the load keeps reading, the
// bytes shift and both checkers must fire, snapcover on the field and
// codecsym on the sequence.
//
// The load counterpart is found through the codecsym pairing (tagged
// roots, call-aligned helpers); a type whose save has no verified load
// pair is codecsym's diagnostic to make, not snapcover's.
type Snapcover struct{}

// Name implements Checker.
func (Snapcover) Name() string { return "snapcover" }

// Rev is the audit revision for //acclint:ignore snapcover@rev pins.
func (Snapcover) Rev() int { return 1 }

// coveredType is one (struct type, save function) obligation.
type coveredType struct {
	obj    *types.TypeName
	st     *types.Struct
	saveFn *types.Func
}

// Check implements Checker.
func (Snapcover) Check(prog *Program, cfg *Config) []Diagnostic {
	a := analyzeCodec(prog, cfg)
	if len(a.seqs) == 0 {
		return nil
	}
	covered := coveredTypes(a, cfg)
	var diags []Diagnostic
	for _, ct := range covered {
		loadFn := a.pairs[ct.saveFn]
		if loadFn == nil {
			continue // no verified load counterpart: codecsym territory
		}
		saveTree := reachableFuncs(a, ct.saveFn)
		loadTree := reachableFuncs(a, loadFn)

		fieldVars := map[*types.Var]bool{}
		for i := 0; i < ct.st.NumFields(); i++ {
			fieldVars[ct.st.Field(i)] = true
		}
		saved := map[*types.Var]bool{}
		for _, n := range saveTree {
			markFieldRefs(n, fieldVars, saved)
		}
		rebuilt := map[*types.Var]bool{}
		read := map[*types.Var]bool{}
		for _, n := range loadTree {
			markRestoreCoverage(n, cfg, ct, fieldVars, rebuilt, read)
		}

		for i := 0; i < ct.st.NumFields(); i++ {
			f := ct.st.Field(i)
			if f.Name() == "_" || saved[f] || rebuilt[f] || read[f] || funcValued(f.Type()) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:   prog.Fset.Position(f.Pos()),
				Check: "snapcover",
				Msg: fmt.Sprintf(
					"field %s.%s.%s is not written by %s, and %s neither rebuilds nor reads it — snapshots silently drop it; save it, rebuild it on restore, or annotate the field with //acclint:ignore snapcover <reason>",
					ct.obj.Pkg().Name(), ct.obj.Name(), f.Name(),
					shortFuncName(ct.saveFn), shortFuncName(loadFn)),
			})
		}
	}
	return diags
}

// funcValued reports whether a field type holds function values (directly
// or as the element type of slices, arrays, maps, or pointers). Function
// values have no serializable identity — they can only be rebound at
// construction — so snapcover exempts them implicitly rather than demand
// an annotation that could never be satisfied by saving.
func funcValued(t types.Type) bool {
	for {
		switch u := t.Underlying().(type) {
		case *types.Signature:
			return true
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return false
		}
	}
}

// coveredTypes enumerates the (type, save function) obligations: every
// SaveState/saveState method whose parameter is the codec writer, plus
// the configured save helpers, each binding the named-struct parameters
// they serialize (or the receiver when the struct is the receiver).
func coveredTypes(a *codecAnalysis, cfg *Config) []coveredType {
	extra := stringSet(cfg.SnapSaveFuncs)
	var out []coveredType
	seen := map[*types.TypeName]bool{}
	add := func(obj *types.TypeName, fn *types.Func) {
		if obj == nil || seen[obj] {
			return
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		seen[obj] = true
		out = append(out, coveredType{obj: obj, st: st, saveFn: fn})
	}
	namedObj := func(t types.Type) *types.TypeName {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj()
		}
		return nil
	}
	for _, n := range a.order {
		fn := n.fn
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			continue
		}
		name := fn.Name()
		isSaveState := (name == "SaveState" || name == "saveState") &&
			sig.Recv() != nil && sig.Params().Len() == 1 &&
			namedKey(sig.Params().At(0).Type()) == cfg.CodecWriterType
		if isSaveState {
			add(namedObj(sig.Recv().Type()), fn)
			continue
		}
		if !extra[funcMatchKey(fn)] {
			continue
		}
		bound := false
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if namedKey(p.Type()) == cfg.CodecWriterType {
				continue
			}
			if obj := namedObj(p.Type()); obj != nil {
				add(obj, fn)
				bound = true
			}
		}
		if !bound && sig.Recv() != nil {
			add(namedObj(sig.Recv().Type()), fn)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].obj.Pos() < out[j].obj.Pos() })
	return out
}

// reachableFuncs walks the static call graph from start and returns the
// in-program functions reached, in deterministic order.
func reachableFuncs(a *codecAnalysis, start *types.Func) []*funcNode {
	seen := map[*types.Func]bool{start: true}
	queue := []*types.Func{start}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		n := a.nodes[fn]
		if n == nil {
			continue
		}
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				if callee := calleeFunc(n.pkg.Info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	var out []*funcNode
	for _, n := range a.order {
		if seen[n.fn] {
			out = append(out, n)
		}
	}
	return out
}

// markFieldRefs marks every field of the covered struct that the function
// body mentions at all — on the save side any reference means the value
// flows into the stream or into a helper that writes it.
func markFieldRefs(n *funcNode, fields map[*types.Var]bool, mark map[*types.Var]bool) {
	info := n.pkg.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if sel, ok := node.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok && fields[v] {
					mark[v] = true
				}
			}
		}
		return true
	})
}

// markRestoreCoverage classifies the load-side uses of the covered
// struct's fields in one function: reader-free assignments and composite
// literals rebuild a field, plain mentions outside write position read it.
func markRestoreCoverage(n *funcNode, cfg *Config, ct coveredType, fields map[*types.Var]bool, rebuilt, read map[*types.Var]bool) {
	info := n.pkg.Info
	readerKey := cfg.CodecReaderType

	fieldOf := func(e ast.Expr) (*types.Var, *ast.SelectorExpr) {
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.SelectorExpr:
				if s, ok := info.Selections[v]; ok && s.Kind() == types.FieldVal {
					if fv, ok := s.Obj().(*types.Var); ok && fields[fv] {
						return fv, v
					}
				}
				return nil, nil
			default:
				return nil, nil
			}
		}
	}
	tainted := func(exprs ...ast.Expr) bool {
		for _, e := range exprs {
			found := false
			ast.Inspect(e, func(node ast.Node) bool {
				if ex, ok := node.(ast.Expr); ok && namedKey(info.TypeOf(ex)) == readerKey {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}

	// writeTargets are the selector nodes used as assignment targets, so
	// the read pass below can exclude them. A plain `f.x = r.I64()` is a
	// symmetric load, neither a rebuild nor a read; an indexed write like
	// `f.m[k] = v` marks only the resolved selector, so the map header
	// mention still registers through the assignment below.
	writeTargets := map[ast.Expr]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			readerFree := !tainted(node.Rhs...)
			for _, lhs := range node.Lhs {
				fv, sel := fieldOf(lhs)
				if sel != nil {
					writeTargets[sel] = true
				}
				if fv != nil && readerFree {
					rebuilt[fv] = true
				}
			}
		case *ast.IncDecStmt:
			if fv, sel := fieldOf(node.X); fv != nil {
				writeTargets[sel] = true
				rebuilt[fv] = true
			}
		case *ast.CompositeLit:
			obj := info.TypeOf(node)
			if p, ok := obj.(*types.Pointer); ok {
				obj = p.Elem()
			}
			if named, ok := obj.(*types.Named); !ok || named.Obj() != ct.obj {
				return true
			}
			for i, el := range node.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok && !tainted(kv.Value) {
						if fv, ok := info.Uses[id].(*types.Var); ok && fields[fv] {
							rebuilt[fv] = true
						}
					}
				} else if i < ct.st.NumFields() && !tainted(el) {
					rebuilt[ct.st.Field(i)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok || writeTargets[sel] {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if fv, ok := s.Obj().(*types.Var); ok && fields[fv] {
				read[fv] = true
			}
		}
		return true
	})
}
