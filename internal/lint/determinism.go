package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism proves the bit-for-bit replay invariant at the source level
// for the packages listed in Config.DeterministicPkgs:
//
//   - no wall clock: time.Now, time.Since, time.Until, time.Sleep,
//     time.After, time.Tick, time.NewTimer, time.NewTicker, time.AfterFunc
//     — virtual time comes from simtime/eventq only;
//   - no global RNG: package-level math/rand functions (rand.Intn,
//     rand.Float64, rand.Seed, ...) share mutable process-wide state, so
//     two runs with the same seed diverge. Constructors (rand.New,
//     rand.NewSource, rand.NewZipf) and methods on a seeded *rand.Rand
//     are fine;
//   - no go statements: the simulator is single-threaded by design so
//     event order is a pure function of the seed;
//   - no un-annotated range over a map: Go randomizes map iteration
//     order, so any map range that feeds ordered state (scheduling,
//     output rows, RNG draws) silently breaks replay. Order-independent
//     iterations must say so with an //acclint:ignore annotation.
//
// Known-concurrent files and functions (the parallel experiment runner,
// the live obs endpoint) are exempted via Config.Allow.
type Determinism struct{}

// Name implements Checker.
func (Determinism) Name() string { return "determinism" }

// Rev is the audit revision for //acclint:ignore determinism@rev pins.
func (Determinism) Rev() int { return 1 }

// wallClockFuncs are the time package functions that read or wait on the
// wall clock. Pure constructors and conversions (time.Duration, time.Unix,
// time.Date, time.Parse) are allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// Check implements Checker.
func (Determinism) Check(prog *Program, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	det := stringSet(cfg.DeterministicPkgs)
	for _, pkg := range prog.Pkgs {
		if !det[pkg.ImportPath] {
			continue
		}
		for _, file := range pkg.Files {
			base := filepath.Base(prog.Fset.Position(file.Pos()).Filename)
			for _, decl := range file.Decls {
				fname := ""
				if fd, ok := decl.(*ast.FuncDecl); ok {
					fname = fd.Name.Name
				}
				allowed := func() bool {
					return cfg.allowed("determinism", pkg.ImportPath, base, fname)
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						if !allowed() {
							diags = append(diags, Diagnostic{
								Pos:   prog.Fset.Position(n.Pos()),
								Check: "determinism",
								Msg:   "go statement: goroutines break single-threaded replay determinism (allowlist known-concurrent code in the lint config)",
							})
						}
					case *ast.CallExpr:
						if d, ok := checkDeterministicCall(prog, pkg, n); ok && !allowed() {
							diags = append(diags, d)
						}
					case *ast.RangeStmt:
						t := pkg.Info.TypeOf(n.X)
						if t == nil {
							return true
						}
						if _, isMap := t.Underlying().(*types.Map); isMap && !allowed() {
							diags = append(diags, Diagnostic{
								Pos:   prog.Fset.Position(n.Pos()),
								Check: "determinism",
								Msg: fmt.Sprintf("range over map (%s): iteration order is randomized; sort the keys, or annotate with //acclint:ignore if the loop is order-independent",
									types.TypeString(t, types.RelativeTo(pkg.Types))),
							})
						}
					}
					return true
				})
			}
		}
	}
	return diags
}

// checkDeterministicCall flags wall-clock reads and global-RNG draws.
func checkDeterministicCall(prog *Program, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return Diagnostic{}, false // methods (e.g. seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return Diagnostic{
				Pos:   prog.Fset.Position(call.Pos()),
				Check: "determinism",
				Msg:   fmt.Sprintf("time.%s reads the wall clock: deterministic code must use virtual time (simtime / eventq.Queue.Now)", fn.Name()),
			}, true
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			return Diagnostic{
				Pos:   prog.Fset.Position(call.Pos()),
				Check: "determinism",
				Msg:   fmt.Sprintf("rand.%s draws from the global process-wide RNG: use a seeded *rand.Rand (e.g. netsim.Network.Rng) so replay is a function of the seed", fn.Name()),
			}, true
		}
	}
	return Diagnostic{}, false
}
