package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Program is the unit checkers operate on: every package matched by the
// load patterns, fully type-checked against one shared FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Loader loads and type-checks packages of the enclosing Go module using
// only the standard library. Module-internal imports are resolved by
// mapping import paths onto directories under the module root and
// type-checking them recursively; standard-library imports are delegated
// to the stdlib source importer (go/importer "source"), which type-checks
// GOROOT packages from source. The module has no third-party
// dependencies, so those two cases are exhaustive.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod

	std     types.ImporterFrom
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module enclosing startDir and prepares a loader.
func NewLoader(startDir string) (*Loader, error) {
	root, modPath, err := findModule(startDir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: root,
		ModPath: modPath,
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
	// The stdlib importer shares the loader's FileSet so positions in
	// stdlib sources (should they ever surface in errors) stay coherent.
	std, ok := importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// findModule walks up from dir looking for go.mod and returns the module
// root directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					mp = strings.Trim(mp, `"`)
					if mp == "" {
						break
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module directive", gomod)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else falls through to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load returns the cached package for a module-internal import path,
// loading and type-checking it on first use.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	p, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

// LoadDir parses and type-checks the non-test Go files of a single
// directory under the given import path. It is the entry point for fixture
// corpora that live outside the module's package tree (testdata).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	p, err := l.loadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	l.cache[importPath] = p
	return p, nil
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	// ImportDir does not error on a directory holding only _test.go
	// files; without this guard such a directory would type-check as an
	// empty pseudo-package.
	if len(bp.GoFiles) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files in %s", importPath, dir)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", importPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Load expands the patterns (import paths, ./relative paths, or the
// ./... wildcard rooted at fromDir) and returns the type-checked program.
func (l *Loader) Load(fromDir string, patterns ...string) (*Program, error) {
	paths, err := l.expand(fromDir, patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.Fset}
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// expand resolves load patterns to module import paths, sorted.
func (l *Loader) expand(fromDir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "..."):
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			var rootDir string
			if base == "." || base == "" {
				rootDir = fromDir
			} else if strings.HasPrefix(base, "./") {
				rootDir = filepath.Join(fromDir, filepath.FromSlash(strings.TrimPrefix(base, "./")))
			} else if base == l.ModPath || strings.HasPrefix(base, l.ModPath+"/") {
				rel := strings.TrimPrefix(strings.TrimPrefix(base, l.ModPath), "/")
				rootDir = filepath.Join(l.ModRoot, filepath.FromSlash(rel))
			} else {
				return nil, fmt.Errorf("lint: pattern %q is outside module %s", pat, l.ModPath)
			}
			dirs, err := packageDirs(rootDir)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				ip, err := l.dirImportPath(d)
				if err != nil {
					return nil, err
				}
				add(ip)
			}
		case pat == "." || strings.HasPrefix(pat, "./"):
			dir := filepath.Join(fromDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			ip, err := l.dirImportPath(dir)
			if err != nil {
				return nil, err
			}
			add(ip)
		case pat == l.ModPath || strings.HasPrefix(pat, l.ModPath+"/"):
			add(pat)
		default:
			return nil, fmt.Errorf("lint: pattern %q is outside module %s (stdlib-only loader)", pat, l.ModPath)
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirImportPath maps a directory under the module root to its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// packageDirs walks root and returns every directory containing buildable
// non-test Go files, skipping testdata, vendor, hidden, and underscore
// directories — the same exclusions the go tool applies to ./... .
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// Require at least one non-test Go file: ImportDir succeeds on a
		// _test.go-only directory, but there is no package to check there.
		if bp, err := build.Default.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
