// Package determinism_ok holds the idioms the determinism checker must
// stay silent on: seeded RNGs, slice iteration, annotated map ranges, and
// allowlisted concurrency.
package determinism_ok

import "math/rand"

// Seeded RNG constructors and methods are allowed.
func seededRoll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Slice iteration is deterministic.
func sum(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Keyed map access without iteration is fine.
func lookup(m map[string]int, k string) int { return m[k] }

// An annotated order-independent map range is allowed.
func drain(m map[string]int) {
	//acclint:ignore determinism deleting every key is iteration-order-independent
	for k := range m {
		delete(m, k)
	}
}

// allowedSpawn is exempted through the lint config's allowlist (the test
// registers this function the way the real config registers the parallel
// experiment runner).
func allowedSpawn(ch chan<- int) {
	go func() { ch <- 1 }()
}

var _ = []any{seededRoll, sum, lookup, drain, allowedSpawn}
