// Package hotpath_bad mirrors the eventq scheduler's shape and seeds
// closure-capture and allocation violations on the hot path;
// expected.golden pins the diagnostics.
package hotpath_bad

import "fmt"

// Time and Duration mirror simtime's scalar types.
type Time int64

// Duration is a virtual-time delta.
type Duration int64

// Queue mirrors eventq.Queue's scheduling surface.
type Queue struct{}

// At mirrors eventq.Queue.At.
func (q *Queue) At(t Time, fn func()) {}

// After mirrors eventq.Queue.After.
func (q *Queue) After(d Duration, fn func()) {}

// CallAt mirrors eventq.Queue.CallAt.
func (q *Queue) CallAt(t Time, fn func(any), arg any) {}

// CallAfter mirrors eventq.Queue.CallAfter.
func (q *Queue) CallAfter(d Duration, fn func(any), arg any) {}

// schedule hands closures to the scheduler: every literal is a finding.
func schedule(q *Queue) {
	q.At(1, func() {})
	q.CallAt(2, func(any) {}, nil)
	q.CallAfter(3, func(any) {}, nil)
}

// Deliver is the configured hot-path root.
func Deliver(n int) string {
	return describe(n)
}

// describe is reachable from Deliver: the Sprintf and the concatenation
// are findings.
func describe(n int) string {
	s := fmt.Sprintf("pkt %d", n)
	s += "!"
	return s
}

// Cold is not reachable from any root: its Sprintf is allowed.
func Cold(n int) string { return fmt.Sprintf("cold %d", n) }

var _ = []any{schedule, Deliver, Cold}
