// Package codecsym_ok exercises the full symmetric-pair surface the
// checker must accept without noise: helper-pair recursion, the
// presence-Bool optional idiom, decode-error early returns that fold the
// tail, length-prefixed loops, and a prefix-only peek reader.
package codecsym_ok

// Writer and Reader are the fixture's own codec stream types; the test
// config points CodecWriterType/CodecReaderType at them.
type Writer struct{}

func (w *Writer) Tag(string)  {}
func (w *Writer) U64(uint64)  {}
func (w *Writer) I64(int64)   {}
func (w *Writer) Int(int)     {}
func (w *Writer) Bool(bool)   {}
func (w *Writer) F64(float64) {}

type Reader struct{ err error }

func (r *Reader) Expect(string) {}
func (r *Reader) U64() uint64   { return 0 }
func (r *Reader) I64() int64    { return 0 }
func (r *Reader) Int() int      { return 0 }
func (r *Reader) Bool() bool    { return false }
func (r *Reader) F64() float64  { return 0 }
func (r *Reader) Err() error    { return r.err }

// inner is serialized through a helper pair: codecsym aligns saveInner
// with loadInner by call position and verifies their bodies recursively.
type inner struct {
	a uint64
	b uint64
}

func saveInner(w *Writer, in *inner) {
	w.U64(in.a)
	w.U64(in.b)
}

func loadInner(r *Reader, in *inner) {
	in.a = r.U64()
	in.b = r.U64()
}

// outer composes every idiom: a presence Bool guarding an optional
// helper block, a decode-error early return on the load side (folding
// the tail), and a length-prefixed element loop.
type outer struct {
	id   int64
	on   bool
	in   inner
	hist []float64
}

func (o *outer) SaveState(w *Writer) {
	w.Tag("outer")
	w.I64(o.id)
	w.Bool(o.on)
	if o.on {
		saveInner(w, &o.in)
	}
	w.Int(len(o.hist))
	for _, v := range o.hist {
		w.F64(v)
	}
}

func (o *outer) RestoreState(r *Reader) error {
	r.Expect("outer")
	o.id = r.I64()
	o.on = r.Bool()
	if o.on {
		loadInner(r, &o.in)
	}
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	o.hist = o.hist[:0]
	for i := 0; i < n; i++ {
		o.hist = append(o.hist, r.F64())
	}
	return r.Err()
}

// peekOuter reads only the header of the "outer" record: prefix loads
// are legal — tools skim streams without consuming whole records.
func peekOuter(r *Reader) int64 {
	r.Expect("outer")
	return r.I64()
}

var _ = []any{peekOuter}
