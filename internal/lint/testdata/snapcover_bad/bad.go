// Package snapcover_bad seeds the failure snapcover exists to catch:
// fields dropped SYMMETRICALLY from both the save and load sides, so the
// codec stays aligned (codecsym is silent) but a restored object diverges
// from the cold run the first time the field matters.
package snapcover_bad

// Writer and Reader are the fixture's own codec stream types; the test
// config points CodecWriterType/CodecReaderType at them.
type Writer struct{}

func (w *Writer) Tag(string)  {}
func (w *Writer) I64(int64)   {}
func (w *Writer) Int(int)     {}
func (w *Writer) F64(float64) {}

type Reader struct{ err error }

func (r *Reader) Expect(string) {}
func (r *Reader) I64() int64    { return 0 }
func (r *Reader) Int() int      { return 0 }
func (r *Reader) F64() float64  { return 0 }
func (r *Reader) Err() error    { return r.err }

// flow drops acked from both halves of an otherwise symmetric pair: the
// stream verifies, but every restore silently zeroes the ack counter.
type flow struct {
	sent  int64
	acked int64
	rate  float64
}

func (f *flow) SaveState(w *Writer) {
	w.Tag("flow")
	w.I64(f.sent)
	w.F64(f.rate)
}

func (f *flow) RestoreState(r *Reader) {
	r.Expect("flow")
	f.sent = r.I64()
	f.rate = r.F64()
}

// params is serialized through a configured save helper
// (Config.SnapSaveFuncs names saveParams): the completeness obligation
// binds to the named-struct parameter, and dropped is missing from both
// sides.
type params struct {
	kmin    int
	kmax    int
	dropped int
}

func saveParams(w *Writer, p *params) {
	w.Int(p.kmin)
	w.Int(p.kmax)
}

func loadParams(r *Reader, p *params) {
	p.kmin = r.Int()
	p.kmax = r.Int()
}

// device is the tagged root that pairs the helper halves.
type device struct {
	p params
}

func (d *device) SaveState(w *Writer) {
	w.Tag("device")
	saveParams(w, &d.p)
}

func (d *device) RestoreState(r *Reader) {
	r.Expect("device")
	loadParams(r, &d.p)
}
