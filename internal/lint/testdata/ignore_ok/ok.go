// Package ignore_ok exercises the two placement forms of a well-formed
// //acclint:ignore annotation; both must fully suppress their diagnostic
// and neither may be reported stale.
package ignore_ok

import "time"

// above uses the line-above form.
func above() time.Time {
	//acclint:ignore determinism fixture exercising the line-above form
	return time.Now()
}

// trailing uses the same-line form.
func trailing() time.Time {
	return time.Now() //acclint:ignore determinism fixture exercising the same-line form
}

var _ = []any{above, trailing}
