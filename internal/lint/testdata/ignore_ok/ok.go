// Package ignore_ok exercises the two placement forms of a well-formed
// //acclint:ignore annotation; both must fully suppress their diagnostic
// and neither may be reported stale.
package ignore_ok

import "time"

// above uses the line-above form.
func above() time.Time {
	//acclint:ignore determinism fixture exercising the line-above form
	return time.Now()
}

// trailing uses the same-line form.
func trailing() time.Time {
	return time.Now() //acclint:ignore determinism fixture exercising the same-line form
}

// pinned carries a revision pin audited against the current determinism
// rev: it suppresses exactly like an unpinned annotation until the
// checker's Rev moves, at which point it rots loudly.
func pinned() time.Time {
	//acclint:ignore determinism@1 fixture exercising a current-revision pin
	return time.Now()
}

var _ = []any{above, trailing, pinned}
