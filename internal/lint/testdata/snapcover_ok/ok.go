// Package snapcover_ok exercises every legitimate way a field escapes
// the save stream: rebuilt reader-free on restore, read (consulted) by
// the restore path, function-valued (implicitly exempt), or annotated
// with //acclint:ignore snapcover and a reason.
package snapcover_ok

// Writer and Reader are the fixture's own codec stream types; the test
// config points CodecWriterType/CodecReaderType at them.
type Writer struct{}

func (w *Writer) Tag(string) {}
func (w *Writer) I64(int64)  {}
func (w *Writer) Int(int)    {}

type Reader struct{ err error }

func (r *Reader) Expect(string) {}
func (r *Reader) I64() int64    { return 0 }
func (r *Reader) Int() int      { return 0 }
func (r *Reader) Err() error    { return r.err }

type registry struct {
	n int
}

// engine covers each exemption class exactly once: ticks is saved, cache
// is rebuilt reader-free, reg is read (restore consults it without
// reassigning), owner carries an explicit annotation, and tick is a
// function value with no serializable identity.
type engine struct {
	ticks int64
	cache []int64
	reg   *registry
	//acclint:ignore snapcover construction wiring: the owner registry is rebound by whoever builds the engine, mirroring the real tree's Network/Queue back-references
	owner *registry
	tick  func()
}

func (e *engine) SaveState(w *Writer) {
	w.Tag("engine")
	w.I64(e.ticks)
}

func (e *engine) RestoreState(r *Reader) {
	r.Expect("engine")
	e.ticks = r.I64()
	e.cache = e.cache[:0]
	e.reg.n++
}

// params mirrors the configured-save-helper binding with full coverage.
type params struct {
	kmin int
	kmax int
}

func saveParams(w *Writer, p *params) {
	w.Int(p.kmin)
	w.Int(p.kmax)
}

func loadParams(r *Reader, p *params) {
	p.kmin = r.Int()
	p.kmax = r.Int()
}

// device is the tagged root that pairs the helper halves.
type device struct {
	p params
}

func (d *device) SaveState(w *Writer) {
	w.Tag("device")
	saveParams(w, &d.p)
}

func (d *device) RestoreState(r *Reader) {
	r.Expect("device")
	loadParams(r, &d.p)
}
