// Package determinism_bad seeds one violation of every determinism rule;
// expected.golden pins the diagnostics.
package determinism_bad

import (
	"math/rand"
	"time"
)

// Wall-clock reads.
func wallNow() time.Time                  { return time.Now() }
func wallSince(t time.Time) time.Duration { return time.Since(t) }
func wallSleep()                          { time.Sleep(time.Millisecond) }

// Global process-wide RNG draw.
func globalRoll() int { return rand.Intn(6) }

// Goroutine spawn.
func spawn(ch chan<- int) {
	go func() { ch <- 1 }()
}

// Un-annotated map iteration.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

var _ = []any{wallNow, wallSince, wallSleep, globalRoll, spawn, sum}
