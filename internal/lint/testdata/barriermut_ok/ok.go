// Package barriermut_ok exercises every sanctioned mutation path: barrier
// roots and the named functions they reach, slot-element deferral (legal
// even inside window closures), the owned type's own methods, and an
// audited //acclint:ignore for a sequential-mode caller.
package barriermut_ok

// Coord is the fixture's coordinator-owned type; the test config names
// it in BarrierOwnedTypes, slots in BarrierSlotFields, Run in
// BarrierRoots, and Stop in BarrierMutMethods.
type Coord struct {
	now   int64
	slots []int64
	done  bool
}

// Stop mutates through the owned type's own method: its invariant domain.
func (c *Coord) Stop() {
	c.done = true
}

// Tick likewise: receiver writes from the type's own methods are legal.
func (c *Coord) Tick() {
	c.now++
}

// Run is the barrier root: direct writes, named-call reachability, and a
// scheduled closure that defers only through slot elements.
func Run(c *Coord) {
	c.now = 1
	helper(c)
	schedule(func() {
		c.slots[0] = 2
	})
}

func helper(c *Coord) {
	c.now = 3
}

// window is shard code deferring through a slot element: the sanctioned
// mechanism, legal without any barrier context.
func window(c *Coord) {
	c.slots[1] = 4
}

// bench mirrors the real tree's sequential-mode drivers: the mutating
// method call is outside any barrier context but audited and annotated.
func bench(c *Coord) {
	//acclint:ignore barriermut fixture mirror of the sequential-mode driver exemption: one event queue, no shard windows
	c.Stop()
}

func schedule(f func()) { _ = f }

var _ = []any{Run, window, bench}
