// Package tracerguard_bad seeds nil-receiver-guard violations on a type
// mirroring obs.Tracer; expected.golden pins the diagnostics.
package tracerguard_bad

// Tracer mirrors obs.Tracer's hook contract.
type Tracer struct{ n int }

// Hook lacks the nil-receiver guard entirely.
func (t *Tracer) Hook(v int) { t.n += v }

// Late guards only after another statement ran first.
func (t *Tracer) Late(v int) {
	x := v * 2
	if t == nil {
		return
	}
	t.n += x
}

// Wrong guards something other than the receiver.
func (t *Tracer) Wrong(v int) {
	if v == 0 {
		return
	}
	t.n += v
}

// hook is unexported: internal helpers run behind a guarded entry point
// and need no guard of their own.
func (t *Tracer) hook(v int) { t.n += v }

var _ = (*Tracer).hook
