// Package codecsym_bad seeds every class of save/load asymmetry the
// codecsym checker proves absent: transposed field order, a mistyped
// read, orphaned tags with no counterpart, and a repeated block the load
// side forgot. expected.golden pins the diagnostics.
package codecsym_bad

// Writer and Reader are the fixture's own codec stream types; the test
// config points CodecWriterType/CodecReaderType at them.
type Writer struct{}

func (w *Writer) Tag(string)    {}
func (w *Writer) U64(uint64)    {}
func (w *Writer) I64(int64)     {}
func (w *Writer) Int(int)       {}
func (w *Writer) Bool(bool)     {}
func (w *Writer) F64(float64)   {}
func (w *Writer) String(string) {}

type Reader struct{ err error }

func (r *Reader) Expect(string)  {}
func (r *Reader) U64() uint64    { return 0 }
func (r *Reader) I64() int64     { return 0 }
func (r *Reader) Int() int       { return 0 }
func (r *Reader) Bool() bool     { return false }
func (r *Reader) F64() float64   { return 0 }
func (r *Reader) String() string { return "" }
func (r *Reader) Err() error     { return r.err }

// state restores its two RTT fields in the opposite order from the save:
// the bytes land in the wrong fields and codecsym reports the
// transposition by field hint.
type state struct {
	srtt   int64
	rttvar int64
}

func (s *state) SaveState(w *Writer) {
	w.Tag("state")
	w.I64(s.srtt)
	w.I64(s.rttvar)
}

func (s *state) RestoreState(r *Reader) {
	r.Expect("state")
	s.rttvar = r.I64()
	s.srtt = r.I64()
}

// counter writes n as a signed 64-bit value but reads it back unsigned:
// the stream kinds disagree.
type counter struct {
	n int64
}

func (c *counter) SaveState(w *Writer) {
	w.Tag("counter")
	w.I64(c.n)
}

func (c *counter) RestoreState(r *Reader) {
	r.Expect("counter")
	c.n = int64(r.U64())
}

// saveOrphan writes a tag no load function ever expects, and loadOrphan
// expects a tag no save function ever writes: both halves are reported.
func saveOrphan(w *Writer, v int) {
	w.Tag("orphan-save")
	w.Int(v)
}

func loadOrphan(r *Reader) int {
	r.Expect("orphan-load")
	return r.Int()
}

// series writes a length-prefixed element loop that the load side never
// replays: every element after the count is silently dropped.
type series struct {
	vals []float64
}

func (s *series) SaveState(w *Writer) {
	w.Tag("series")
	w.Int(len(s.vals))
	for _, v := range s.vals {
		w.F64(v)
	}
}

func (s *series) RestoreState(r *Reader) {
	r.Expect("series")
	_ = r.Int()
}

var _ = []any{saveOrphan, loadOrphan}
