// Package barriermut_bad seeds every way shard-window code can mutate
// coordinator-owned state illegally: a closure defined in barrier code
// that escapes into a window, direct writes from a function outside any
// barrier context, a whole-slot-field reassignment (only element writes
// are the sanctioned deferral), and a mutating method call hidden behind
// a window callback.
package barriermut_bad

// Coord is the fixture's coordinator-owned type; the test config names
// it in BarrierOwnedTypes, slots in BarrierSlotFields, Run in
// BarrierRoots, and Stop in BarrierMutMethods.
type Coord struct {
	now   int64
	slots []int64
	done  bool
}

// Stop is a declared barrier-only mutating method; its own receiver
// writes are its invariant domain and stay legal.
func (c *Coord) Stop() {
	c.done = true
}

// Run is the barrier root: its direct writes and the writes of named
// functions it calls are legal, but the closure it schedules escapes
// into a shard window and may not touch owned state.
func Run(c *Coord) {
	c.now = 1
	helper(c)
	schedule(func() {
		c.now = 2
	})
}

// helper is statically reachable from Run through a named call, so its
// write executes under the barrier.
func helper(c *Coord) {
	c.now = 3
}

// window models shard-window code: not reachable from any barrier root.
// The element write into slots is the sanctioned deferral and passes;
// everything else is flagged.
func window(c *Coord) {
	c.now = 4
	c.slots[0] = 9
	c.slots = nil
	c.Stop()
}

func schedule(f func()) { _ = f }

var _ = []any{Run, window}
