// Package ignore_bad seeds every misuse of the //acclint:ignore escape
// hatch: unknown check names, missing reasons, stale annotations, and
// annotations aimed at the wrong check; expected.golden pins both the
// misuse errors and the diagnostics that survive un-suppressed.
package ignore_bad

import "time"

// The check name does not exist: the annotation errors and the underlying
// diagnostic survives.
func wrongName() time.Time {
	//acclint:ignore determinsm typo in the check name
	return time.Now()
}

// Missing reason: the annotation errors and the diagnostic survives.
func noReason() time.Time {
	//acclint:ignore determinism
	return time.Now()
}

// Stale: there is nothing on this or the next line to suppress.
func stale() int {
	//acclint:ignore determinism this suppresses nothing
	return 42
}

// An ignore for a different check never suppresses: the determinism
// diagnostic survives and the tracerguard annotation is stale.
func crossCheck() time.Time {
	//acclint:ignore tracerguard aimed at the wrong check
	return time.Now()
}

//acclint:ignore
func malformed() {}

// Pinned to an outdated revision: the annotation is rotten — it stops
// suppressing (the diagnostic survives) and demands a re-audit.
func rottenPin() time.Time {
	//acclint:ignore determinism@0 audited before the rules tightened
	return time.Now()
}

// The revision pin does not parse: the annotation errors and the
// diagnostic survives.
func badPin() time.Time {
	//acclint:ignore determinism@x the pin is not a number
	return time.Now()
}

var _ = []any{wrongName, noReason, stale, crossCheck, malformed, rottenPin, badPin}
