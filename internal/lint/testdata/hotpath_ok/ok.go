// Package hotpath_ok holds the idioms the hotpath checker must stay
// silent on: pre-bound method values on the typed fast path, and
// formatting that is unreachable from the pipeline roots.
package hotpath_ok

import "fmt"

// Time mirrors simtime's scalar type.
type Time int64

// Queue mirrors eventq.Queue's scheduling surface.
type Queue struct{}

// CallAt mirrors eventq.Queue.CallAt.
func (q *Queue) CallAt(t Time, fn func(any), arg any) {}

// Sender pre-binds its tick method once; call sites pass the bound value,
// never a function literal.
type Sender struct {
	q      *Queue
	tickFn func(any)
}

// NewSender wires the pre-bound method value.
func NewSender(q *Queue) *Sender {
	s := &Sender{q: q}
	s.tickFn = s.tick
	return s
}

func (s *Sender) tick(any) { s.q.CallAt(1, s.tickFn, nil) }

// Deliver is the configured root; nothing it reaches formats strings.
func Deliver(n int) int { return n * 2 }

// report is not reachable from Deliver, so its formatting is allowed.
func report(n int) string { return fmt.Sprintf("n=%d", n) }

var _ = []any{NewSender, Deliver, report}
