// Package tracerguard_ok holds the accepted guard forms the tracerguard
// checker must stay silent on.
package tracerguard_ok

// Tracer mirrors obs.Tracer's hook contract.
type Tracer struct{ n int }

// Hook begins with the canonical guard.
func (t *Tracer) Hook(v int) {
	if t == nil {
		return
	}
	t.n += v
}

// Enabled's whole body is the nil comparison itself.
func (t *Tracer) Enabled() bool { return t != nil }

// Count guards with a valued return.
func (t *Tracer) Count() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Flipped writes the comparison nil-first; still a guard.
func (t *Tracer) Flipped(v int) {
	if nil == t {
		return
	}
	t.n += v
}

// reset is unexported: no guard required.
func (t *Tracer) reset() { t.n = 0 }

var _ = (*Tracer).reset
