// Package lint is a from-scratch static-analysis framework for this repo,
// built only on the standard library's go/parser and go/types (no
// golang.org/x/tools dependency, preserving the module's stdlib-only rule).
//
// It exists to turn the repository's two load-bearing invariants —
// bit-for-bit deterministic replay and a zero-allocation per-packet hot
// path — from test-suite folklore into build-failing facts. The runtime
// test suite exercises *some* code paths; a stray time.Now, an unseeded
// global math/rand call, a goroutine, an unordered map range, or a closure
// handed to the scheduler can silently break replay or reintroduce
// allocations anywhere the tests do not reach. The checkers in this
// package prove the properties over the whole source tree on every build.
//
// Three domain checkers ship today (see determinism.go, hotpath.go,
// tracerguard.go). Checkers run over a type-checked Program loaded by
// Loader (load.go) and report Diagnostics. Deliberate violations are
// annotated in source with
//
//	//acclint:ignore <check> <reason>
//
// on the offending line or the line above it. The reason is mandatory,
// the check name must exist, and an annotation that suppresses nothing is
// itself an error — so ignores cannot rot (ignore.go).
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the checker that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
}

// Checker is one analysis pass over a whole loaded program. Checkers see
// the full Program (not one package at a time) because some properties —
// hot-path reachability — are inherently cross-package.
//
// Rev is the checker's audit revision: it starts at 1 and is bumped
// whenever the checker's rules tighten enough that previously audited
// //acclint:ignore annotations deserve a fresh look. An annotation may pin
// the revision it was audited against ("//acclint:ignore check@2 reason");
// when the pinned revision falls behind Rev, the annotation itself becomes
// a diagnostic until someone re-audits and re-pins it (ignore.go).
type Checker interface {
	Name() string
	Rev() int
	Check(prog *Program, cfg *Config) []Diagnostic
}

// AllCheckers returns the full suite in a fixed order.
func AllCheckers() []Checker {
	return []Checker{Determinism{}, Hotpath{}, TracerGuard{}, Snapcover{}, Codecsym{}, Barriermut{}}
}

// Run executes the checkers over prog, applies the //acclint:ignore
// annotations found in prog's sources, appends annotation-misuse errors
// (unknown check, missing reason, stale ignore), and returns the surviving
// diagnostics sorted by position.
func Run(prog *Program, cfg *Config, checkers []Checker) []Diagnostic {
	// The check-name universe is always the full suite: an annotation for a
	// checker that exists but was deselected this run (acclint -checks ...)
	// is neither unknown nor provably stale. Revision pins, by contrast,
	// are statically decidable, so the map carries each checker's Rev.
	known := make(map[string]int)
	for _, c := range AllCheckers() {
		known[c.Name()] = c.Rev()
	}
	active := make(map[string]bool, len(checkers))
	var diags []Diagnostic
	for _, c := range checkers {
		known[c.Name()] = c.Rev()
		active[c.Name()] = true
		diags = append(diags, c.Check(prog, cfg)...)
	}
	igs := scanIgnores(prog)
	out := applyIgnores(diags, igs, known, active)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}
