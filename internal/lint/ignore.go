package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces an in-source suppression:
//
//	//acclint:ignore <check> <reason>
//
// The annotation suppresses diagnostics of <check> reported on the same
// line (trailing comment) or on the line immediately below (comment on
// its own line). The reason is mandatory — an escape hatch without a
// recorded justification is how invariants rot. Annotations are audited:
// naming an unknown check, omitting the reason, or suppressing nothing
// (a stale ignore) are themselves build-failing diagnostics.
const ignorePrefix = "//acclint:ignore"

// ignore is one parsed annotation.
type ignore struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// scanIgnores collects every acclint annotation in the program's sources.
func scanIgnores(prog *Program) []*ignore {
	var igs []*ignore
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					// Require a clean token boundary: "//acclint:ignorex"
					// is not an annotation.
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					fields := strings.Fields(rest)
					ig := &ignore{pos: prog.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						ig.check = fields[0]
						ig.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
					}
					igs = append(igs, ig)
				}
			}
		}
	}
	return igs
}

// applyIgnores filters diags through the annotations and appends
// annotation-misuse errors under the pseudo-check "acclint" (which cannot
// itself be ignored). known is every check name that exists; active is the
// subset that actually ran — staleness is only decidable for those.
func applyIgnores(diags []Diagnostic, igs []*ignore, known, active map[string]bool) []Diagnostic {
	valid := func(ig *ignore) bool {
		return known[ig.check] && ig.reason != ""
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ig := range igs {
			if !valid(ig) {
				continue
			}
			if ig.check != d.Check || ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	keys := make([]string, 0, len(known))
	for k := range known {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, ig := range igs {
		switch {
		case ig.check == "":
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: "malformed annotation: want //acclint:ignore <check> <reason>"})
		case !known[ig.check]:
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("unknown check %q in //acclint:ignore (known checks: %s)",
					ig.check, strings.Join(keys, ", "))})
		case ig.reason == "":
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("//acclint:ignore %s needs a reason: an escape hatch without a recorded justification is not auditable", ig.check)})
		case !ig.used && active[ig.check]:
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("stale //acclint:ignore: no %s diagnostic on this or the next line — delete the annotation", ig.check)})
		}
	}
	return out
}
