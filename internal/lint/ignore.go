package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// ignorePrefix introduces an in-source suppression:
//
//	//acclint:ignore <check> <reason>
//	//acclint:ignore <check>@<rev> <reason>
//
// The annotation suppresses diagnostics of <check> reported on the same
// line (trailing comment) or on the line immediately below (comment on
// its own line). The reason is mandatory — an escape hatch without a
// recorded justification is how invariants rot. Annotations are audited:
// naming an unknown check, omitting the reason, or suppressing nothing
// (a stale ignore) are themselves build-failing diagnostics.
//
// The optional @<rev> pins the checker revision (Checker.Rev) the
// suppression was audited against. When a checker's rules tighten its
// revision is bumped, and every pinned annotation left behind stops
// suppressing and becomes a build-failing "re-audit me" diagnostic —
// stale-reason rot is detected instead of silently carried forward.
// Unpinned annotations are revision-agnostic.
const ignorePrefix = "//acclint:ignore"

// ignore is one parsed annotation.
type ignore struct {
	pos    token.Position
	check  string // base check name, "@rev" suffix stripped
	rev    int    // pinned checker revision, or -1 when unpinned
	badRev bool   // "@" present but the revision did not parse
	reason string
	used   bool
}

// scanIgnores collects every acclint annotation in the program's sources.
func scanIgnores(prog *Program) []*ignore {
	var igs []*ignore
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					// Require a clean token boundary: "//acclint:ignorex"
					// is not an annotation.
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					fields := strings.Fields(rest)
					ig := &ignore{pos: prog.Fset.Position(c.Pos()), rev: -1}
					if len(fields) > 0 {
						ig.check = fields[0]
						ig.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
						if base, revStr, found := strings.Cut(ig.check, "@"); found {
							ig.check = base
							if n, err := strconv.Atoi(revStr); err == nil && n >= 0 {
								ig.rev = n
							} else {
								ig.badRev = true
							}
						}
					}
					igs = append(igs, ig)
				}
			}
		}
	}
	return igs
}

// applyIgnores filters diags through the annotations and appends
// annotation-misuse errors under the pseudo-check "acclint" (which cannot
// itself be ignored). known maps every check name that exists to its
// current revision; active is the subset that actually ran — staleness is
// only decidable for those. An annotation pinned to an outdated revision
// is rotten: it neither suppresses nor passes the audit.
func applyIgnores(diags []Diagnostic, igs []*ignore, known map[string]int, active map[string]bool) []Diagnostic {
	rotten := func(ig *ignore) bool {
		rev, ok := known[ig.check]
		return ok && ig.rev >= 0 && ig.rev != rev
	}
	valid := func(ig *ignore) bool {
		_, ok := known[ig.check]
		return ok && ig.reason != "" && !ig.badRev && !rotten(ig)
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ig := range igs {
			if !valid(ig) {
				continue
			}
			if ig.check != d.Check || ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	keys := make([]string, 0, len(known))
	for k := range known {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, ig := range igs {
		_, checkKnown := known[ig.check]
		switch {
		case ig.check == "":
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: "malformed annotation: want //acclint:ignore <check>[@rev] <reason>"})
		case !checkKnown:
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("unknown check %q in //acclint:ignore (known checks: %s)",
					ig.check, strings.Join(keys, ", "))})
		case ig.badRev:
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("//acclint:ignore %s: revision pin must be a non-negative integer (//acclint:ignore %s@%d <reason>)",
					ig.check, ig.check, known[ig.check])})
		case ig.reason == "":
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("//acclint:ignore %s needs a reason: an escape hatch without a recorded justification is not auditable", ig.check)})
		case rotten(ig):
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("rotten //acclint:ignore: audited against %s rev %d but the checker is now rev %d — re-audit the suppression and re-pin it (//acclint:ignore %s@%d <reason>)",
					ig.check, ig.rev, known[ig.check], ig.check, known[ig.check])})
		case !ig.used && active[ig.check]:
			out = append(out, Diagnostic{Pos: ig.pos, Check: "acclint",
				Msg: fmt.Sprintf("stale //acclint:ignore: no %s diagnostic on this or the next line — delete the annotation", ig.check)})
		}
	}
	return out
}
