package lint

// Codecsym proves snapshot write/read symmetry at the source level: every
// tagged save function (one whose first stream op is w.Tag("...")) must
// have a load counterpart whose ordered codec.Reader calls mirror the
// codec.Writer calls one-to-one — Tag against Expect with the same
// literal, primitive against same-kind primitive, helper call against
// helper call (verified recursively), loops against loops, conditionals
// against conditionals. Field-name hints catch transposed same-type
// reads: if the save writes .srtt where the load assigns .rttvar, the
// restored state is plausible but wrong, the worst failure mode a codec
// has. See codecseq.go for the sequence model.
//
// A tag expected by several loads designates the heaviest as the full
// restorer; the others may consume a prefix (header peeking à la
// snap.Peek). Saves with no expecting load, and loads expecting a tag
// nothing writes, are both diagnostics: unreachable state is a bug in
// whichever direction it points.
type Codecsym struct{}

// Name implements Checker.
func (Codecsym) Name() string { return "codecsym" }

// Rev is the audit revision for //acclint:ignore codecsym@rev pins.
func (Codecsym) Rev() int { return 1 }

// Check implements Checker.
func (Codecsym) Check(prog *Program, cfg *Config) []Diagnostic {
	return analyzeCodec(prog, cfg).diags
}
