package lint

// Config scopes the checkers to the packages and types they guard. The
// zero value checks nothing; DefaultConfig returns the repository's real
// invariant surface. Fixture tests construct narrow configs pointing at
// testdata packages.
type Config struct {
	// DeterministicPkgs are import paths whose code must replay
	// bit-for-bit: no wall clock, no global RNG, no goroutines, no
	// un-annotated map iteration.
	DeterministicPkgs []string

	// EnginePkgs are import paths on the per-packet hot path where
	// function-literal arguments to the scheduler are forbidden — the
	// typed pooled fast path (pre-bound method values) is mandatory.
	EnginePkgs []string

	// QueueTypes name the scheduler types ("importpath.TypeName") whose
	// scheduling methods the hotpath checker watches.
	QueueTypes []string

	// TracerTypes name the tracer types ("importpath.TypeName") whose
	// exported methods must begin with the nil-receiver guard.
	TracerTypes []string

	// HotRoots are the entry points of the per-packet pipeline, written
	// "importpath.Func" or "importpath.Type.Method" (pointer-ness of the
	// receiver is irrelevant). Functions statically reachable from any
	// root must not format or concatenate strings.
	HotRoots []string

	// CodecWriterType / CodecReaderType name the snapshot codec's stream
	// types ("importpath.TypeName"). They anchor the codecsym and
	// snapcover checkers; when empty, both checkers are inert.
	CodecWriterType string
	CodecReaderType string

	// SnapSaveFuncs are save helpers ("importpath.Func" or
	// "importpath.Type.Method") whose named-struct parameters are held to
	// the snapcover completeness obligation in addition to every type
	// with a SaveState/saveState method.
	SnapSaveFuncs []string

	// BarrierOwnedTypes name coordinator-owned types
	// ("importpath.TypeName") whose fields may only be mutated in barrier
	// contexts: barriermut flags writes from anywhere else.
	BarrierOwnedTypes []string

	// BarrierSlotFields ("importpath.Type.Field") are the per-flow slot
	// fields: element writes into them are the sanctioned race-free
	// deferral mechanism and are legal from any context, including
	// shard-window closures.
	BarrierSlotFields []string

	// BarrierRoots are named functions that establish a barrier context
	// (the coordinator loop, plan application, sequential-mode drivers):
	// functions statically reachable from them — through named calls, not
	// through function literals — may mutate coordinator-owned state.
	BarrierRoots []string

	// BarrierMutMethods are coordinator methods that mutate shared state
	// behind a call ("importpath.Type.Method"); calling one outside a
	// barrier context is flagged like a direct write.
	BarrierMutMethods []string

	// Allow exempts (check, package, file, function) tuples from a
	// checker. Unlike //acclint:ignore annotations, allowlist entries are
	// configuration: they cover whole files or functions that are
	// concurrent or wall-clock by design, and they are not checked for
	// staleness.
	Allow []AllowEntry
}

// AllowEntry is one allowlist row. Pkg is required; empty Check, File, or
// Func act as wildcards. File matches the base name of the source file.
type AllowEntry struct {
	Check  string
	Pkg    string
	File   string
	Func   string
	Reason string
}

// allowed reports whether the (check, pkg, file, fn) tuple is exempted.
func (c *Config) allowed(check, pkg, file, fn string) bool {
	for _, a := range c.Allow {
		if a.Pkg != pkg {
			continue
		}
		if a.Check != "" && a.Check != check {
			continue
		}
		if a.File != "" && a.File != file {
			continue
		}
		if a.Func != "" && a.Func != fn {
			continue
		}
		return true
	}
	return false
}

func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// Module is the import path of the repository this suite guards.
const Module = "github.com/accnet/acc"

func internalPkgs(names ...string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = Module + "/internal/" + n
	}
	return out
}

// DefaultConfig describes the repository's invariant surface: which
// packages must replay deterministically, which are on the per-packet hot
// path, and where the known-concurrent exceptions live.
func DefaultConfig() *Config {
	return &Config{
		// Everything the simulator executes between seed and result table
		// must be a pure function of the seed. stats and obs ride along:
		// monitors tick inside the engine, and tracer hooks run on the
		// packet path.
		DeterministicPkgs: internalPkgs(
			"simtime", "eventq", "netsim", "red", "dcqcn", "tcp", "topo",
			"workload", "rl", "acc", "exp", "faults", "stats", "obs",
			"psim", "hybrid", "snap", "sweep",
		),
		// Packages whose scheduling must stay on the closure-free typed
		// fast path (pre-bound method values, pooled events).
		EnginePkgs: internalPkgs("eventq", "netsim", "tcp", "dcqcn", "stats", "hybrid"),
		QueueTypes: []string{Module + "/internal/eventq.Queue"},
		TracerTypes: []string{
			Module + "/internal/obs.Tracer",
		},
		// Entry points of the per-packet pipeline: ingress/egress on
		// hosts, switches, and ports, the transport packet handlers, the
		// timer callbacks they re-arm, and the in-engine stats ticks.
		HotRoots: []string{
			Module + "/internal/netsim.Switch.Receive",
			Module + "/internal/netsim.Host.Receive",
			Module + "/internal/netsim.Host.Send",
			Module + "/internal/netsim.Port.Enqueue",
			Module + "/internal/netsim.Port.trySend",
			Module + "/internal/netsim.Port.txDone",
			Module + "/internal/netsim.Port.arrive",
			Module + "/internal/netsim.Port.deliver",
			Module + "/internal/netsim.Port.remoteArrive",
			Module + "/internal/netsim.Port.SendCtrl",
			Module + "/internal/netsim.Network.AllocPacket",
			Module + "/internal/netsim.Network.ReleasePacket",
			Module + "/internal/tcp.Flow.senderHandle",
			Module + "/internal/tcp.Receiver.handle",
			Module + "/internal/tcp.Flow.trySend",
			Module + "/internal/tcp.Flow.onRTO",
			Module + "/internal/dcqcn.Flow.senderHandle",
			Module + "/internal/dcqcn.Receiver.handle",
			Module + "/internal/dcqcn.Flow.trySend",
			Module + "/internal/stats.QueueMonitor.tick",
			Module + "/internal/stats.ThroughputMeter.tick",
			Module + "/internal/eventq.Queue.Step",
			// Hybrid fast-path analytic advance: the window tick and
			// exact-time completion callbacks (queue mode), the barrier
			// tick (psim mode), and the fill/commit kernels they reach.
			Module + "/internal/hybrid.Engine.tickEvent",
			Module + "/internal/hybrid.Engine.completeEvent",
			Module + "/internal/hybrid.Engine.Tick",
			Module + "/internal/hybrid.Engine.commitTo",
			Module + "/internal/hybrid.Engine.waterfill",
		},
		// The snapshot codec stream types: every SaveState/LoadState pair
		// in the tree moves bytes through these two.
		CodecWriterType: Module + "/internal/snap/codec.Writer",
		CodecReaderType: Module + "/internal/snap/codec.Reader",
		// Save helpers that serialize a struct passed as a parameter
		// rather than a receiver; snapcover binds the completeness
		// obligation to the named-struct parameter.
		SnapSaveFuncs: []string{
			Module + "/internal/dcqcn.saveParams",
			Module + "/internal/tcp.saveParams",
			Module + "/internal/netsim.savePacket",
			Module + "/internal/hybrid.Engine.SaveFlow",
			Module + "/internal/psim.Engine.SaveApplied",
			Module + "/internal/snap.saveScenario",
			Module + "/internal/rl.saveTransition",
		},
		// Coordinator-owned state in the parallel engine and the hybrid
		// overlay: mutations must happen at the barrier (or through the
		// slot fields below).
		BarrierOwnedTypes: []string{
			Module + "/internal/psim.Engine",
			Module + "/internal/psim.HybridState",
			Module + "/internal/psim.Applied",
			Module + "/internal/psim.Plan",
			Module + "/internal/hybrid.Engine",
			Module + "/internal/hybrid.Link",
			Module + "/internal/hybrid.Flow",
		},
		// Per-flow slot fields: disjoint element writes are the sanctioned
		// way for shard-window callbacks to defer effects to the barrier.
		BarrierSlotFields: []string{
			Module + "/internal/psim.HybridState.hflows",
			Module + "/internal/psim.HybridState.packetDone",
			Module + "/internal/psim.Applied.End",
			Module + "/internal/psim.Applied.DCQCNSend",
			Module + "/internal/psim.Applied.DCQCNRecv",
			Module + "/internal/psim.Applied.TCPSend",
			Module + "/internal/psim.Applied.TCPRecv",
		},
		// Barrier contexts: construction/apply (shards not yet running),
		// the coordinator loop itself, and the hybrid overlay's own event
		// path (which runs on the coordinator between windows).
		BarrierRoots: []string{
			Module + "/internal/psim.Build",
			Module + "/internal/psim.PlanFromTrace",
			Module + "/internal/psim.RecordPlan",
			Module + "/internal/hybrid.New",
			Module + "/internal/hybrid.NewBarrier",
			Module + "/internal/psim.Engine.Run",
			Module + "/internal/psim.Engine.Apply",
			Module + "/internal/psim.Engine.ApplyHybrid",
			Module + "/internal/psim.ApplyToFabric",
			Module + "/internal/psim.HybridState.barrier",
			Module + "/internal/hybrid.Engine.tickEvent",
			Module + "/internal/hybrid.Engine.completeEvent",
			Module + "/internal/hybrid.Engine.StartTicker",
		},
		// Mutations hidden behind method calls — the PR 8 race was a
		// mid-window PacketDone from a shard callback.
		BarrierMutMethods: []string{
			Module + "/internal/hybrid.Engine.Tick",
			Module + "/internal/hybrid.Engine.PacketDone",
			Module + "/internal/hybrid.Engine.StartFlow",
			Module + "/internal/hybrid.Engine.Stop",
		},
		Allow: []AllowEntry{
			{
				Check: "determinism",
				Pkg:   Module + "/internal/exp",
				File:  "exp.go",
				Func:  "forEachParallel",
				Reason: "the parallel experiment runner: each run owns an independent Network and RNG, " +
					"so cross-run goroutines cannot reorder events within a run",
			},
			{
				Check: "determinism",
				Pkg:   Module + "/internal/obs",
				File:  "server.go",
				Reason: "the live introspection endpoint serves HTTP while the simulation runs; " +
					"it is wall-clock concurrent by design and touches no simulation state",
			},
			{
				Check: "determinism",
				Pkg:   Module + "/internal/sweep",
				File:  "sweep.go",
				Func:  "run",
				Reason: "the branch fan-out: each branch restores an independent World (own Networks, " +
					"RNGs, event queues) and writes only its own result slot, so concurrency cannot " +
					"reorder events within a branch — TestParallelMatchesSerial proves it",
			},
			{
				Check: "determinism",
				Pkg:   Module + "/internal/psim",
				File:  "sync.go",
				Reason: "the conservative-sync coordinator: shard goroutines are barrier-isolated " +
					"(phases alternate over channels, so no two goroutines touch simulation state " +
					"concurrently) and TestGOMAXPROCSDeterminism proves interleaving is unobservable",
			},
			{
				Check: "barriermut",
				Pkg:   Module + "/internal/exp",
				File:  "hybrid.go",
				Reason: "sequential-mode hybrid driver: a single event queue drives the engine, there " +
					"are no shard windows, so StartFlow/PacketDone/Stop from completion callbacks " +
					"cannot race the (nonexistent) coordinator",
			},
			{
				Check: "barriermut",
				Pkg:   Module + "/internal/perf",
				File:  "hybridbench.go",
				Reason: "sequential-mode hybrid benchmark: single event queue, no shard windows; the " +
					"closures are plain event callbacks, not window-escaping shard code",
			},
		},
	}
}

// funcKey renders an "importpath.Func" / "importpath.Type.Method" matcher
// key. See Config.HotRoots for the grammar.
func funcKey(pkgPath, typeName, funcName string) string {
	if typeName == "" {
		return pkgPath + "." + funcName
	}
	return pkgPath + "." + typeName + "." + funcName
}

// typeKey renders the "importpath.TypeName" form used by QueueTypes and
// TracerTypes.
func typeKey(pkgPath, typeName string) string {
	return pkgPath + "." + typeName
}
