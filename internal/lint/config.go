package lint

// Config scopes the checkers to the packages and types they guard. The
// zero value checks nothing; DefaultConfig returns the repository's real
// invariant surface. Fixture tests construct narrow configs pointing at
// testdata packages.
type Config struct {
	// DeterministicPkgs are import paths whose code must replay
	// bit-for-bit: no wall clock, no global RNG, no goroutines, no
	// un-annotated map iteration.
	DeterministicPkgs []string

	// EnginePkgs are import paths on the per-packet hot path where
	// function-literal arguments to the scheduler are forbidden — the
	// typed pooled fast path (pre-bound method values) is mandatory.
	EnginePkgs []string

	// QueueTypes name the scheduler types ("importpath.TypeName") whose
	// scheduling methods the hotpath checker watches.
	QueueTypes []string

	// TracerTypes name the tracer types ("importpath.TypeName") whose
	// exported methods must begin with the nil-receiver guard.
	TracerTypes []string

	// HotRoots are the entry points of the per-packet pipeline, written
	// "importpath.Func" or "importpath.Type.Method" (pointer-ness of the
	// receiver is irrelevant). Functions statically reachable from any
	// root must not format or concatenate strings.
	HotRoots []string

	// Allow exempts (check, package, file, function) tuples from a
	// checker. Unlike //acclint:ignore annotations, allowlist entries are
	// configuration: they cover whole files or functions that are
	// concurrent or wall-clock by design, and they are not checked for
	// staleness.
	Allow []AllowEntry
}

// AllowEntry is one allowlist row. Pkg is required; empty Check, File, or
// Func act as wildcards. File matches the base name of the source file.
type AllowEntry struct {
	Check  string
	Pkg    string
	File   string
	Func   string
	Reason string
}

// allowed reports whether the (check, pkg, file, fn) tuple is exempted.
func (c *Config) allowed(check, pkg, file, fn string) bool {
	for _, a := range c.Allow {
		if a.Pkg != pkg {
			continue
		}
		if a.Check != "" && a.Check != check {
			continue
		}
		if a.File != "" && a.File != file {
			continue
		}
		if a.Func != "" && a.Func != fn {
			continue
		}
		return true
	}
	return false
}

func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// Module is the import path of the repository this suite guards.
const Module = "github.com/accnet/acc"

func internalPkgs(names ...string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = Module + "/internal/" + n
	}
	return out
}

// DefaultConfig describes the repository's invariant surface: which
// packages must replay deterministically, which are on the per-packet hot
// path, and where the known-concurrent exceptions live.
func DefaultConfig() *Config {
	return &Config{
		// Everything the simulator executes between seed and result table
		// must be a pure function of the seed. stats and obs ride along:
		// monitors tick inside the engine, and tracer hooks run on the
		// packet path.
		DeterministicPkgs: internalPkgs(
			"simtime", "eventq", "netsim", "red", "dcqcn", "tcp", "topo",
			"workload", "rl", "acc", "exp", "faults", "stats", "obs",
			"psim", "hybrid", "snap", "sweep",
		),
		// Packages whose scheduling must stay on the closure-free typed
		// fast path (pre-bound method values, pooled events).
		EnginePkgs: internalPkgs("eventq", "netsim", "tcp", "dcqcn", "stats", "hybrid"),
		QueueTypes: []string{Module + "/internal/eventq.Queue"},
		TracerTypes: []string{
			Module + "/internal/obs.Tracer",
		},
		// Entry points of the per-packet pipeline: ingress/egress on
		// hosts, switches, and ports, the transport packet handlers, the
		// timer callbacks they re-arm, and the in-engine stats ticks.
		HotRoots: []string{
			Module + "/internal/netsim.Switch.Receive",
			Module + "/internal/netsim.Host.Receive",
			Module + "/internal/netsim.Host.Send",
			Module + "/internal/netsim.Port.Enqueue",
			Module + "/internal/netsim.Port.trySend",
			Module + "/internal/netsim.Port.txDone",
			Module + "/internal/netsim.Port.arrive",
			Module + "/internal/netsim.Port.deliver",
			Module + "/internal/netsim.Port.remoteArrive",
			Module + "/internal/netsim.Port.SendCtrl",
			Module + "/internal/netsim.Network.AllocPacket",
			Module + "/internal/netsim.Network.ReleasePacket",
			Module + "/internal/tcp.Flow.senderHandle",
			Module + "/internal/tcp.Receiver.handle",
			Module + "/internal/tcp.Flow.trySend",
			Module + "/internal/tcp.Flow.onRTO",
			Module + "/internal/dcqcn.Flow.senderHandle",
			Module + "/internal/dcqcn.Receiver.handle",
			Module + "/internal/dcqcn.Flow.trySend",
			Module + "/internal/stats.QueueMonitor.tick",
			Module + "/internal/stats.ThroughputMeter.tick",
			Module + "/internal/eventq.Queue.Step",
			// Hybrid fast-path analytic advance: the window tick and
			// exact-time completion callbacks (queue mode), the barrier
			// tick (psim mode), and the fill/commit kernels they reach.
			Module + "/internal/hybrid.Engine.tickEvent",
			Module + "/internal/hybrid.Engine.completeEvent",
			Module + "/internal/hybrid.Engine.Tick",
			Module + "/internal/hybrid.Engine.commitTo",
			Module + "/internal/hybrid.Engine.waterfill",
		},
		Allow: []AllowEntry{
			{
				Check: "determinism",
				Pkg:   Module + "/internal/exp",
				File:  "exp.go",
				Func:  "forEachParallel",
				Reason: "the parallel experiment runner: each run owns an independent Network and RNG, " +
					"so cross-run goroutines cannot reorder events within a run",
			},
			{
				Check: "determinism",
				Pkg:   Module + "/internal/obs",
				File:  "server.go",
				Reason: "the live introspection endpoint serves HTTP while the simulation runs; " +
					"it is wall-clock concurrent by design and touches no simulation state",
			},
			{
				Check: "determinism",
				Pkg:   Module + "/internal/sweep",
				File:  "sweep.go",
				Func:  "run",
				Reason: "the branch fan-out: each branch restores an independent World (own Networks, " +
					"RNGs, event queues) and writes only its own result slot, so concurrency cannot " +
					"reorder events within a branch — TestParallelMatchesSerial proves it",
			},
			{
				Check: "determinism",
				Pkg:   Module + "/internal/psim",
				File:  "sync.go",
				Reason: "the conservative-sync coordinator: shard goroutines are barrier-isolated " +
					"(phases alternate over channels, so no two goroutines touch simulation state " +
					"concurrently) and TestGOMAXPROCSDeterminism proves interleaving is unobservable",
			},
		},
	}
}

// funcKey renders an "importpath.Func" / "importpath.Type.Method" matcher
// key. See Config.HotRoots for the grammar.
func funcKey(pkgPath, typeName, funcName string) string {
	if typeName == "" {
		return pkgPath + "." + funcName
	}
	return pkgPath + "." + typeName + "." + funcName
}

// typeKey renders the "importpath.TypeName" form used by QueueTypes and
// TracerTypes.
func typeKey(pkgPath, typeName string) string {
	return pkgPath + "." + typeName
}
