package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TracerGuard proves the zero-overhead-when-disabled tracing contract:
// every exported method on the types named in Config.TracerTypes must
// begin with the nil-receiver guard, because the engine calls hooks on a
// possibly-nil *Tracer from the per-packet path and relies on the guard
// to make the disabled case a branch-and-return with no allocation.
//
// Two guard forms are accepted:
//
//	func (t *Tracer) Hook(...)      { if t == nil { return } ... }
//	func (t *Tracer) Enabled() bool { return t != nil }
//
// — the first statement is either the literal guard (an if with no init,
// no else, and a body that only returns), or the whole body is a single
// return whose expression is a nil comparison of the receiver.
type TracerGuard struct{}

// Name implements Checker.
func (TracerGuard) Name() string { return "tracerguard" }

// Rev is the audit revision for //acclint:ignore tracerguard@rev pins.
func (TracerGuard) Rev() int { return 1 }

// Check implements Checker.
func (TracerGuard) Check(prog *Program, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	tracerTypes := stringSet(cfg.TracerTypes)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				pkgPath, typeName, ok := recvNamed(fn)
				if !ok || !tracerTypes[typeKey(pkgPath, typeName)] {
					continue
				}
				recvName := receiverName(fd)
				if recvName == "" || recvName == "_" {
					diags = append(diags, Diagnostic{
						Pos:   prog.Fset.Position(fd.Pos()),
						Check: "tracerguard",
						Msg: fmt.Sprintf("exported %s.%s has no named receiver: name it and begin with the nil-receiver guard",
							typeName, fd.Name.Name),
					})
					continue
				}
				if nilGuardFirst(pkg.Info, fd, recvName) || nilComparisonBody(pkg.Info, fd, recvName) {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:   prog.Fset.Position(fd.Pos()),
					Check: "tracerguard",
					Msg: fmt.Sprintf("exported %s.%s must begin with the nil-receiver guard `if %s == nil { return ... }`: hooks run on a possibly-nil tracer from the per-packet path",
						typeName, fd.Name.Name, recvName),
				})
			}
		}
	}
	return diags
}

// receiverName returns the receiver identifier of a method declaration.
func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// nilGuardFirst accepts `if recv == nil { return ... }` as the first
// statement (no init clause, no else, body containing only returns).
func nilGuardFirst(info *types.Info, fd *ast.FuncDecl, recvName string) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	if !isRecvNilComparison(info, ifs.Cond, recvName, token.EQL) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	for _, st := range ifs.Body.List {
		if _, isRet := st.(*ast.ReturnStmt); !isRet {
			return false
		}
	}
	return true
}

// nilComparisonBody accepts a body that is a single
// `return recv == nil` / `return recv != nil`.
func nilComparisonBody(info *types.Info, fd *ast.FuncDecl, recvName string) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	return isRecvNilComparison(info, ret.Results[0], recvName, token.EQL) ||
		isRecvNilComparison(info, ret.Results[0], recvName, token.NEQ)
}

// isRecvNilComparison matches `recv <op> nil` or `nil <op> recv`.
func isRecvNilComparison(info *types.Info, e ast.Expr, recvName string, op token.Token) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	return (isIdentNamed(be.X, recvName) && isNilIdent(info, be.Y)) ||
		(isNilIdent(info, be.X) && isIdentNamed(be.Y, recvName))
}
