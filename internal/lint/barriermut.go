package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// Barriermut enforces the psim OnBarrier mutation contract: state owned
// by the barrier coordinator (Config.BarrierOwnedTypes — the parallel
// engine, the hybrid overlay, the admission plan and its applied view)
// may only be mutated while the shards are quiescent. Shard-window code —
// transport callbacks, fault closures, anything running inside a window —
// must defer its effects, either through the sanctioned per-flow slot
// fields (Config.BarrierSlotFields: disjoint index writes drained at the
// barrier) or by running inside a barrier context.
//
// A write to a field of an owned type is allowed when one of:
//
//   - it is an element write into a declared slot field (res.End[i] = t):
//     per-flow slots are the deferral mechanism, legal anywhere;
//   - it occurs in a named function statically reachable from a barrier
//     root (Config.BarrierRoots: the coordinator loop, build/apply/plan
//     construction, snapshot save/restore, registered OnBarrier hooks) —
//     and NOT inside a function literal, because closures defined in
//     barrier code routinely escape into shard windows;
//   - the enclosing named function is a method on the owned type itself:
//     a type's own methods are its invariant domain, and the checker
//     polices foreign writers.
//
// Calls to the coordinator's known-mutating methods
// (Config.BarrierMutMethods, e.g. hybrid.Engine.PacketDone) are held to
// the same contexts — the PR 8 race was exactly a mid-window PacketDone
// from a shard callback, legal-looking because the mutation hid behind a
// method call.
type Barriermut struct{}

// Name implements Checker.
func (Barriermut) Name() string { return "barriermut" }

// Rev is the audit revision for //acclint:ignore barriermut@rev pins.
func (Barriermut) Rev() int { return 1 }

// Check implements Checker.
func (b Barriermut) Check(prog *Program, cfg *Config) []Diagnostic {
	if len(cfg.BarrierOwnedTypes) == 0 {
		return nil
	}
	owned := stringSet(cfg.BarrierOwnedTypes)
	slots := stringSet(cfg.BarrierSlotFields)
	mutMethods := stringSet(cfg.BarrierMutMethods)

	order := declFuncs(prog)
	index := map[*types.Func]*funcNode{}
	for _, n := range order {
		index[n.fn] = n
	}

	// ownedField maps each field object of an owned struct type to its
	// "importpath.Type.Field" key (resolving selections through
	// embedding to the declaring struct).
	ownedField := map[*types.Var]string{}
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !owned[typeKey(pkg.ImportPath, tn.Name())] {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				ownedField[f] = typeKey(pkg.ImportPath, tn.Name()) + "." + f.Name()
			}
		}
	}

	// Barrier reachability over named functions only: calls made inside a
	// function literal do not execute when their definer runs, so they do
	// not extend the barrier context.
	roots := stringSet(cfg.BarrierRoots)
	reach := map[*types.Func]bool{}
	var queue []*types.Func
	for _, n := range order {
		if roots[funcMatchKey(n.fn)] {
			reach[n.fn] = true
			queue = append(queue, n.fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		n := index[fn]
		if n == nil {
			continue
		}
		var scan func(root ast.Node)
		scan = func(root ast.Node) {
			ast.Inspect(root, func(node ast.Node) bool {
				if _, ok := node.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := node.(*ast.CallExpr); ok {
					if callee := calleeFunc(n.pkg.Info, call); callee != nil && !reach[callee] {
						reach[callee] = true
						queue = append(queue, callee)
					}
				}
				return true
			})
		}
		scan(n.decl.Body)
	}

	recvOwnedKey := func(fn *types.Func) string {
		if pkgPath, typeName, ok := recvNamed(fn); ok {
			k := typeKey(pkgPath, typeName)
			if owned[k] {
				return k
			}
		}
		return ""
	}

	var diags []Diagnostic
	for _, n := range order {
		info := n.pkg.Info
		file := prog.Fset.Position(n.decl.Pos()).Filename
		if cfg.allowed("barriermut", n.pkg.ImportPath, filepath.Base(file), n.fn.Name()) {
			continue
		}
		inBarrier := reach[n.fn]
		recvKey := recvOwnedKey(n.fn)

		checkWrite := func(lhs ast.Expr, inLit bool) {
			fv, indexed := writeTarget(info, lhs)
			if fv == nil {
				return
			}
			key, ok := ownedField[fv]
			if !ok {
				return
			}
			if indexed && slots[key] {
				return // per-flow slot write: the sanctioned deferral
			}
			if !inLit && (inBarrier || recvKey != "") {
				return
			}
			where := "outside any barrier context"
			if inLit {
				where = "inside a function literal (closures escape into shard windows)"
			}
			diags = append(diags, Diagnostic{
				Pos:   prog.Fset.Position(lhs.Pos()),
				Check: "barriermut",
				Msg: fmt.Sprintf(
					"write to coordinator-owned %s %s: shard-window code must defer through a per-flow slot field or an OnBarrier hook",
					key, where),
			})
		}
		checkCall := func(call *ast.CallExpr, inLit bool) {
			callee := calleeFunc(info, call)
			if callee == nil || !mutMethods[funcMatchKey(callee)] {
				return
			}
			if !inLit && (inBarrier || recvKey != "") {
				return
			}
			where := "outside any barrier context"
			if inLit {
				where = "inside a function literal (closures escape into shard windows)"
			}
			diags = append(diags, Diagnostic{
				Pos:   prog.Fset.Position(call.Pos()),
				Check: "barriermut",
				Msg: fmt.Sprintf(
					"call to barrier-only method %s %s: defer through a per-flow slot field drained at the barrier",
					shortFuncName(callee), where),
			})
		}

		var scan func(root ast.Node, inLit bool)
		scan = func(root ast.Node, inLit bool) {
			ast.Inspect(root, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.FuncLit:
					scan(node.Body, true)
					return false
				case *ast.AssignStmt:
					for _, lhs := range node.Lhs {
						checkWrite(lhs, inLit)
					}
				case *ast.IncDecStmt:
					checkWrite(node.X, inLit)
				case *ast.CallExpr:
					checkCall(node, inLit)
				}
				return true
			})
		}
		scan(n.decl.Body, false)
	}
	return diags
}

// writeTarget resolves an assignment target to the owned field it writes,
// reporting whether the field itself was indexed (an element write).
// Writes through plain pointers or locals resolve to nil.
func writeTarget(info *types.Info, e ast.Expr) (*types.Var, bool) {
	indexed := false
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			indexed = true
			e = v.X
		case *ast.SelectorExpr:
			if s, ok := info.Selections[v]; ok && s.Kind() == types.FieldVal {
				if fv, ok := s.Obj().(*types.Var); ok {
					return fv, indexed
				}
			}
			return nil, false
		default:
			return nil, false
		}
	}
}
