// Package red implements the WRED/ECN marking discipline that commodity
// switch chips apply at egress queues, parameterized by the ECN template
// (Kmin, Kmax, Pmax) that ACC tunes.
//
// Marking follows RFC 3168 semantics with the instantaneous-queue variant
// used in datacenters (DCTCP, DCQCN): when the egress queue length is below
// Kmin nothing is marked; between Kmin and Kmax packets are marked with a
// probability that rises linearly to Pmax; above Kmax every ECN-capable
// packet is marked. Packets that are not ECN-capable are dropped instead of
// marked in the above-Kmax region, which is how the drop-tail interaction in
// the paper's TCP/RDMA fairness study (§5.2) arises.
package red

import (
	"fmt"
	"math/rand"
)

// Config is an ECN/WRED template: the three parameters the paper's agent
// tunes per egress queue (§3.3, "Action").
type Config struct {
	Kmin int     // low marking threshold, bytes
	Kmax int     // high marking threshold, bytes
	Pmax float64 // marking probability at Kmax, in [0,1]
}

// Validate reports whether the template is self-consistent.
func (c Config) Validate() error {
	if c.Kmin < 0 || c.Kmax < 0 {
		return fmt.Errorf("red: negative threshold (Kmin=%d Kmax=%d)", c.Kmin, c.Kmax)
	}
	if c.Kmin > c.Kmax {
		return fmt.Errorf("red: Kmin %d > Kmax %d", c.Kmin, c.Kmax)
	}
	if c.Pmax < 0 || c.Pmax > 1 {
		return fmt.Errorf("red: Pmax %v outside [0,1]", c.Pmax)
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("ECN{Kmin=%dKB Kmax=%dKB Pmax=%.0f%%}", c.Kmin/1024, c.Kmax/1024, c.Pmax*100)
}

// MarkProb returns the marking probability for an ECN-capable packet arriving
// when the queue holds qlen bytes.
func (c Config) MarkProb(qlen int) float64 {
	switch {
	case qlen < c.Kmin:
		return 0
	case qlen >= c.Kmax:
		return 1
	default:
		span := c.Kmax - c.Kmin
		if span == 0 {
			return 1
		}
		return c.Pmax * float64(qlen-c.Kmin) / float64(span)
	}
}

// Verdict is the outcome of admitting one packet.
type Verdict int

const (
	// Pass admits the packet unmarked.
	Pass Verdict = iota
	// Mark admits the packet with the CE codepoint set.
	Mark
	// Drop discards the packet (non-ECT packet above Kmax, or buffer full —
	// the caller decides buffer overflow separately).
	Drop
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Mark:
		return "mark"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Admit decides the fate of a packet arriving at a queue currently holding
// qlen bytes. ect reports whether the packet is ECN-capable transport.
// rng drives the probabilistic region; it must not be nil.
func (c Config) Admit(qlen int, ect bool, rng *rand.Rand) Verdict {
	p := c.MarkProb(qlen)
	if p <= 0 {
		return Pass
	}
	hit := p >= 1 || rng.Float64() < p
	if !hit {
		return Pass
	}
	if ect {
		return Mark
	}
	return Drop
}

// Presets from the paper's evaluation (§2.2, §5.1). SECN thresholds scale
// with link bandwidth in SECN2; these constructors take the reference values
// at 25Gbps and the callers scale as needed.

// SECN0 is the DCTCP-paper setting: single threshold Kmin=Kmax=18KB (Fig. 2).
func SECN0() Config { return Config{Kmin: 18 * 1024, Kmax: 18 * 1024, Pmax: 1} }

// SECN1 is the DCQCN-paper setting: Kmin=5KB, Kmax=200KB (§5.1 uses Pmax=1%
// per the DCQCN paper's recommended marking slope).
func SECN1() Config { return Config{Kmin: 5 * 1024, Kmax: 200 * 1024, Pmax: 0.01} }

// SECN2 is the cloud-provider (HPCC-paper) setting at bandwidth bw:
// Kmin=100KB and Kmax=400KB scaled by bw/25Gbps (§5.1).
func SECN2(bwGbps float64) Config {
	s := bwGbps / 25
	return Config{Kmin: int(100 * 1024 * s), Kmax: int(400 * 1024 * s), Pmax: 1}
}

// VendorDefault is the device-vendor storage-cluster suggestion the paper
// compares against in §5.3.1: Kmin=30KB, Kmax=270KB, Pmax=10%.
func VendorDefault() Config { return Config{Kmin: 30 * 1024, Kmax: 270 * 1024, Pmax: 0.10} }
