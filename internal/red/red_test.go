package red

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarkProbRegions(t *testing.T) {
	c := Config{Kmin: 100, Kmax: 300, Pmax: 0.5}
	cases := []struct {
		qlen int
		want float64
	}{
		{0, 0},
		{99, 0},
		{100, 0},
		{200, 0.25},
		{299, 0.5 * 199 / 200},
		{300, 1},
		{1000, 1},
	}
	for _, cse := range cases {
		if got := c.MarkProb(cse.qlen); got != cse.want {
			t.Errorf("MarkProb(%d) = %v, want %v", cse.qlen, got, cse.want)
		}
	}
}

func TestMarkProbSingleThreshold(t *testing.T) {
	// Kmin == Kmax is DCTCP-style step marking.
	c := Config{Kmin: 100, Kmax: 100, Pmax: 1}
	if c.MarkProb(99) != 0 {
		t.Fatal("below threshold must not mark")
	}
	if c.MarkProb(100) != 1 {
		t.Fatal("at threshold must mark")
	}
}

func TestMarkProbMonotone(t *testing.T) {
	f := func(kmin, span uint16, q1, q2 uint16) bool {
		c := Config{Kmin: int(kmin), Kmax: int(kmin) + int(span), Pmax: 0.8}
		a, b := int(q1), int(q2)
		if a > b {
			a, b = b, a
		}
		return c.MarkProb(a) <= c.MarkProb(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Config{Kmin: 100, Kmax: 200, Pmax: 1}
	// Below Kmin: always pass.
	for i := 0; i < 100; i++ {
		if v := c.Admit(50, true, rng); v != Pass {
			t.Fatalf("below Kmin: %v", v)
		}
	}
	// Above Kmax: ECT marked, non-ECT dropped.
	if v := c.Admit(500, true, rng); v != Mark {
		t.Fatalf("ECT above Kmax: %v, want mark", v)
	}
	if v := c.Admit(500, false, rng); v != Drop {
		t.Fatalf("non-ECT above Kmax: %v, want drop", v)
	}
}

func TestAdmitProbabilisticRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Config{Kmin: 0, Kmax: 200, Pmax: 0.5}
	marks := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Admit(100, true, rng) == Mark {
			marks++
		}
	}
	// Expected probability: 0.5*100/200 = 0.25.
	frac := float64(marks) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("empirical mark fraction %v, want ~0.25", frac)
	}
}

func TestValidate(t *testing.T) {
	good := Config{Kmin: 10, Kmax: 20, Pmax: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Kmin: -1, Kmax: 10, Pmax: 0.5},
		{Kmin: 20, Kmax: 10, Pmax: 0.5},
		{Kmin: 10, Kmax: 20, Pmax: 1.5},
		{Kmin: 10, Kmax: 20, Pmax: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}

func TestPresets(t *testing.T) {
	for name, c := range map[string]Config{
		"SECN0":  SECN0(),
		"SECN1":  SECN1(),
		"SECN2":  SECN2(25),
		"vendor": VendorDefault(),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// SECN2 scales with bandwidth (§5.1).
	at25, at100 := SECN2(25), SECN2(100)
	if at100.Kmin != 4*at25.Kmin || at100.Kmax != 4*at25.Kmax {
		t.Fatalf("SECN2 scaling wrong: %+v vs %+v", at25, at100)
	}
}

func TestVerdictString(t *testing.T) {
	if Pass.String() != "pass" || Mark.String() != "mark" || Drop.String() != "drop" {
		t.Fatal("verdict strings wrong")
	}
}
