// Storage example: the paper's §5.3.1 macro-benchmark in miniature — a
// distributed SSD-storage cluster (compute and storage nodes in a 3:1
// ratio) running the Table-1 traffic models, measuring IOPS under the
// vendor's static ECN suggestion versus ACC.
//
//	go run ./examples/storage
package main

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func runModel(model workload.StorageModel, ioDepth int, useACC bool) float64 {
	net := netsim.New(7)
	fab := topo.TestbedClos(net, topo.DefaultConfig())
	if useACC {
		acc.NewSystem(net, fab.Switches(), nil, acc.DefaultSystemConfig())
	} else {
		for _, sw := range fab.Switches() {
			sw.SetRED(red.VendorDefault())
		}
	}
	params := dcqcn.DefaultParams(25 * simtime.Gbps)
	cluster := workload.RunStorage(net, workload.StorageConfig{
		Compute: fab.Hosts[:18],
		Storage: fab.Hosts[18:],
		Model:   model,
		IODepth: ioDepth,
		Start: func(src, dst *netsim.Host, size int64, onDone func()) {
			dcqcn.Start(net, src, dst, size, params, func(*dcqcn.Flow) {
				if onDone != nil {
					onDone()
				}
			})
		},
		Replicate: true,
	})
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	cluster.Stop()
	return cluster.IOPS()
}

func main() {
	fmt.Println("distributed storage IOPS: 18 compute + 6 storage nodes, IO depth 64")
	fmt.Printf("%-16s %12s %12s %8s\n", "workload", "vendor SECN", "ACC", "gain")
	for _, model := range workload.Table1() {
		secn := runModel(model, 64, false)
		accv := runModel(model, 64, true)
		fmt.Printf("%-16s %12.0f %12.0f %+7.1f%%\n", model.Name, secn, accv, (accv/secn-1)*100)
	}
}
