// Quickstart: build a leaf-spine RDMA fabric, run an incast under a static
// ECN setting and under ACC, and compare flow completion times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
)

func main() {
	for _, useACC := range []bool{false, true} {
		// 1. A deterministic simulation: same seed, same run.
		net := netsim.New(42)

		// 2. Two-tier Clos: 2 leaves x 4 hosts, 2 spines, 25G hosts.
		fab := topo.LeafSpine(net, 2, 4, 2, topo.DefaultConfig())

		// 3. Policy: static DCQCN-paper ECN setting, or ACC tuners that
		//    learn the threshold online on every switch.
		label := "static SECN1"
		if useACC {
			label = "ACC"
			acc.NewSystem(net, fab.Switches(), nil, acc.DefaultSystemConfig())
		} else {
			for _, sw := range fab.Switches() {
				sw.SetRED(red.SECN1())
			}
		}

		// 4. Workload: 7:1 cross-fabric incast of 1MB RDMA messages,
		//    renewed continuously for 20ms of virtual time.
		var col stats.FCTCollector
		params := dcqcn.DefaultParams(25 * simtime.Gbps)
		recv := fab.HostsAt[0][0]
		senders := append(append([]*netsim.Host{}, fab.HostsAt[0][1:]...), fab.HostsAt[1]...)
		for _, src := range senders {
			src := src
			var loop func(*dcqcn.Flow)
			loop = func(f *dcqcn.Flow) {
				if f != nil {
					col.AddFlow(f.Size, f.Start, f.End, "rdma")
				}
				dcqcn.Start(net, src, recv, simtime.MB, params, loop)
			}
			loop(nil)
		}
		net.RunUntil(simtime.Time(20 * simtime.Millisecond))

		// 5. Results.
		s := stats.Summarize(col.Records)
		leaf := fab.Leaves[0]
		fmt.Printf("%-12s  flows=%-4d avg FCT=%-10v p99 FCT=%-10v marks=%-6d drops=%d\n",
			label, s.Count, s.Avg, s.P99, leaf.MarksTotal, leaf.DropsTotal)
	}
}
