// Training example: the paper's §5.3.2 distributed-training benchmark — 7
// GPU workers and one parameter server exchanging AlexNet/ResNet-50
// gradients every iteration; training speed depends directly on the
// network's handling of the synchronized push/pull bursts.
//
//	go run ./examples/training
package main

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func run(model workload.TrainingModel, policy string) (imagesPerSec float64, pauses uint64) {
	net := netsim.New(11)
	fab := topo.Star(net, 8, topo.DefaultConfig())
	switch policy {
	case "ACC":
		acc.NewSystem(net, fab.Switches(), nil, acc.DefaultSystemConfig())
	case "SECN1":
		fab.Leaves[0].SetRED(red.SECN1())
	case "SECN2":
		fab.Leaves[0].SetRED(red.SECN2(25))
	}
	params := dcqcn.DefaultParams(25 * simtime.Gbps)
	job := workload.RunTraining(net, workload.TrainingConfig{
		Workers:     fab.Hosts[:7],
		PS:          fab.Hosts[7],
		Model:       model,
		ComputeTime: 200 * simtime.Microsecond,
		ScaleBytes:  100, // shrink transfers so iterations fit in milliseconds
		Start: func(src, dst *netsim.Host, size int64, onDone func()) {
			dcqcn.Start(net, src, dst, size, params, func(*dcqcn.Flow) {
				if onDone != nil {
					onDone()
				}
			})
		},
	})
	net.RunUntil(simtime.Time(40 * simtime.Millisecond))
	job.Stop()
	for _, h := range fab.Hosts {
		pauses += h.Port.PauseRxEvents
	}
	return job.ImagesPerSec(), pauses
}

func main() {
	fmt.Println("distributed training: 7 workers + 1 parameter server (scaled transfers)")
	fmt.Printf("%-10s %-8s %14s %12s\n", "model", "policy", "images/sec", "PFC pauses")
	for _, model := range []workload.TrainingModel{workload.AlexNet(), workload.ResNet50()} {
		for _, policy := range []string{"SECN1", "SECN2", "ACC"} {
			speed, pauses := run(model, policy)
			fmt.Printf("%-10s %-8s %14.0f %12d\n", model.Name, policy, speed, pauses)
		}
	}
}
