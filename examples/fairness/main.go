// Fairness example: RDMA (DCQCN) and TCP (DCTCP/Reno) sharing a switch,
// isolated into traffic classes by DWRR with a 70/30 split (§5.2). Shows
// how the measured share tracks the allocation and how the RDMA-queue ECN
// threshold affects it.
//
//	go run ./examples/fairness
package main

import (
	"fmt"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

func run(rdmaRED red.Config) (rdmaShare float64) {
	net := netsim.New(3)
	cfg := topo.DefaultConfig()
	cfg.HostBW = 100 * simtime.Gbps
	cfg.FabricBW = 100 * simtime.Gbps
	weights := make([]int, netsim.NumPrio)
	weights[0], weights[3] = 3, 7 // TCP 30%, RDMA 70%
	cfg.QueueWeights = weights
	fab := topo.Star(net, 8, cfg)
	recv := fab.Hosts[7]

	// Program the RDMA class's ECN template on every port.
	for _, p := range fab.Leaves[0].Ports {
		p.Queue(3).RED = rdmaRED
	}

	rdmaParams := dcqcn.DefaultParams(100 * simtime.Gbps)
	tcpParams := tcp.DefaultParams()
	for i := 0; i < 4; i++ {
		src := fab.Hosts[i]
		var rloop func(*dcqcn.Flow)
		rloop = func(*dcqcn.Flow) { dcqcn.Start(net, src, recv, 8*simtime.MB, rdmaParams, rloop) }
		rloop(nil)
		var tloop func(*tcp.Flow)
		tloop = func(*tcp.Flow) { tcp.Start(net, src, recv, 8*simtime.MB, tcpParams, tloop) }
		tloop(nil)
	}

	hot := fab.Leaves[0].Ports[7]
	net.RunUntil(simtime.Time(2 * simtime.Millisecond))
	r0, t0 := hot.Queue(3).TxBytes, hot.Queue(0).TxBytes
	net.RunUntil(simtime.Time(12 * simtime.Millisecond))
	rb := float64(hot.Queue(3).TxBytes - r0)
	tb := float64(hot.Queue(0).TxBytes - t0)
	return rb / (rb + tb)
}

func main() {
	fmt.Println("RDMA/TCP coexistence on a 100G switch, DWRR 70/30 (4 senders each class)")
	fmt.Printf("%-40s %12s\n", "RDMA-class ECN template", "RDMA share")
	for _, c := range []red.Config{
		{Kmin: 5 * simtime.KB, Kmax: 200 * simtime.KB, Pmax: 0.01}, // SECN1: aggressive
		{Kmin: 100 * simtime.KB, Kmax: 400 * simtime.KB, Pmax: 1},  // SECN2
		{Kmin: 1 * simtime.MB, Kmax: 8 * simtime.MB, Pmax: 0.1},    // deep: protects RDMA share
	} {
		fmt.Printf("%-40s %11.1f%%\n", c.String(), run(c)*100)
	}
	fmt.Println("\ntarget RDMA share is 70%: TCP's slower ACK-clocked control loop grabs buffer and")
	fmt.Println("bandwidth beyond its allocation while DCQCN backs off — the unfairness of §5.2.")
	fmt.Println("Tuning the RDMA-class threshold trades share against queueing delay; ACC automates")
	fmt.Println("that tradeoff (see accsim -exp fig8)")
}
