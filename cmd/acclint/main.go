// Command acclint runs the repository's stdlib-only analyzer suite: it
// loads the module with go/parser + go/types, type-checks it, and proves
// the determinism and zero-allocation invariants at the source level.
//
// Usage:
//
//	go run ./cmd/acclint ./...
//	go run ./cmd/acclint -checks determinism,hotpath ./internal/netsim
//	go run ./cmd/acclint -json ./... > diagnostics.json
//
// Exit status 0 means the tree is clean, 1 means diagnostics were
// reported, 2 means the load itself failed (parse or type errors).
// With -json, diagnostics are emitted as a JSON array of
// {file,line,col,check,msg} objects (an empty array when clean), which
// CI uploads as a build artifact.
//
// Deliberate violations are annotated in source:
//
//	//acclint:ignore <check> <reason>
//
// on the offending line or the line above. Unknown check names, missing
// reasons, and stale annotations (suppressing nothing) are diagnostics in
// their own right, so the escape hatch cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/accnet/acc/internal/lint"
)

// jsonDiag is the machine-readable diagnostic shape emitted by -json.
type jsonDiag struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as a JSON array of {file,line,col,check,msg}")
	verbose := flag.Bool("v", false, "list the packages and checks as they run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: acclint [-checks c1,c2] [-json] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	checkers := lint.AllCheckers()
	if *checksFlag != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*checksFlag, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var sel []lint.Checker
		for _, c := range checkers {
			if want[c.Name()] {
				sel = append(sel, c)
				delete(want, c.Name())
			}
		}
		for unknown := range want {
			fmt.Fprintf(os.Stderr, "acclint: unknown check %q\n", unknown)
			os.Exit(2)
		}
		checkers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := loader.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, p := range prog.Pkgs {
			fmt.Fprintf(os.Stderr, "acclint: loaded %s (%d files)\n", p.ImportPath, len(p.Files))
		}
		for _, c := range checkers {
			fmt.Fprintf(os.Stderr, "acclint: running %s\n", c.Name())
		}
	}

	diags := lint.Run(prog, lint.DefaultConfig(), checkers)
	for i := range diags {
		// Print module-relative paths: stable across machines and CI.
		d := &diags[i]
		if rel, err := filepath.Rel(loader.ModRoot, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	if *jsonFlag {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:  d.Pos.Filename,
				Line:  d.Pos.Line,
				Col:   d.Pos.Column,
				Check: d.Check,
				Msg:   d.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "acclint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acclint: %v\n", err)
	os.Exit(2)
}
