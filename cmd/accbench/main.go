// Command accbench measures raw engine throughput — the same leaf-spine
// line-rate core as BenchmarkSimulatorCore — and writes the result as
// machine-readable JSON, so CI (and humans diffing two checkouts) can track
// events/sec, ns/event, and allocations/event without parsing `go test
// -bench` output.
//
// Usage:
//
//	accbench                       # write BENCH_core.json in the cwd
//	accbench -out /tmp/core.json   # write elsewhere
//	accbench -out -                # print to stdout only
//	accbench -window 5ms -seed 7   # larger measured window
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/accnet/acc/internal/perf"
	"github.com/accnet/acc/internal/simtime"
)

func main() {
	o := perf.DefaultCoreOptions()
	var (
		out    = flag.String("out", "BENCH_core.json", "output path ('-' = stdout only)")
		seed   = flag.Int64("seed", o.Seed, "simulation seed")
		window = flag.Duration("window", time.Duration(o.Window), "measured span of virtual time")
		warmup = flag.Duration("warmup", time.Duration(o.Warmup), "virtual warmup before measuring")
	)
	flag.Parse()
	o.Seed = *seed
	o.Window = simtime.Duration(*window)
	o.Warmup = simtime.Duration(*warmup)

	r := perf.RunCore(o)

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "accbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "accbench:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(buf)
}
