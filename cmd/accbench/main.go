// Command accbench measures raw engine throughput — the same leaf-spine
// line-rate core as BenchmarkSimulatorCore — and writes the result as
// machine-readable JSON, so CI (and humans diffing two checkouts) can track
// events/sec, ns/event, and allocations/event without parsing `go test
// -bench` output.
//
// Usage:
//
//	accbench                       # write BENCH_core.json in the cwd
//	accbench -out /tmp/core.json   # write elsewhere
//	accbench -out -                # print to stdout only
//	accbench -window 5ms -seed 7   # larger measured window
//	accbench -trajectory BENCH_trajectory.json
//	                               # also append a git-SHA-tagged run record
//	accbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                               # pprof profiles of the measured window
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/accnet/acc/internal/perf"
	"github.com/accnet/acc/internal/simtime"
)

// trajectoryRun is one entry in the BENCH_trajectory.json array: a CoreResult
// tagged with enough provenance (commit, date, configuration) to plot engine
// throughput over the history of the repository.
type trajectoryRun struct {
	Commit     string          `json:"commit"`
	Date       string          `json:"date"` // RFC 3339, UTC
	Seed       int64           `json:"seed"`
	WarmupUsec float64         `json:"warmup_usec"`
	WindowUsec float64         `json:"window_usec"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	Result     perf.CoreResult `json:"result"`
}

// gitShortSHA returns the current commit's short SHA, or "unknown" when git
// or the repository is unavailable (e.g. running from an exported tree).
func gitShortSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendTrajectory reads the existing run array (if any), appends run, and
// rewrites the file. A missing file starts a new trajectory; a corrupt file
// is an error rather than silent data loss.
func appendTrajectory(path string, run trajectoryRun) error {
	var runs []trajectoryRun
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &runs); err != nil {
			return fmt.Errorf("existing trajectory %s is not a run array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, run)
	buf, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accbench:", err)
	os.Exit(1)
}

func main() {
	o := perf.DefaultCoreOptions()
	var (
		out        = flag.String("out", "BENCH_core.json", "output path ('-' = stdout only)")
		seed       = flag.Int64("seed", o.Seed, "simulation seed")
		window     = flag.Duration("window", time.Duration(o.Window), "measured span of virtual time")
		warmup     = flag.Duration("warmup", time.Duration(o.Warmup), "virtual warmup before measuring")
		trajectory = flag.String("trajectory", "", "append a git-SHA-tagged run record to this JSON array file")
		commit     = flag.String("commit", "", "commit id for the trajectory record (default: git rev-parse --short HEAD)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measured window to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()
	o.Seed = *seed
	o.Window = simtime.Duration(*window)
	o.Warmup = simtime.Duration(*warmup)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	r := perf.RunCore(o)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	os.Stdout.Write(buf)

	if *trajectory != "" {
		id := *commit
		if id == "" {
			id = gitShortSHA()
		}
		run := trajectoryRun{
			Commit:     id,
			Date:       time.Now().UTC().Format(time.RFC3339),
			Seed:       o.Seed,
			WarmupUsec: o.Warmup.Seconds() * 1e6,
			WindowUsec: o.Window.Seconds() * 1e6,
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Result:     r,
		}
		if err := appendTrajectory(*trajectory, run); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "accbench: appended run %s to %s\n", id, *trajectory)
	}
}
