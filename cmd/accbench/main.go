// Command accbench measures raw engine throughput — the same leaf-spine
// line-rate core as BenchmarkSimulatorCore — and writes the result as
// machine-readable JSON, so CI (and humans diffing two checkouts) can track
// events/sec, ns/event, and allocations/event without parsing `go test
// -bench` output.
//
// Usage:
//
//	accbench                       # write BENCH_core.json in the cwd
//	accbench -out /tmp/core.json   # write elsewhere
//	accbench -out -                # print to stdout only
//	accbench -window 5ms -seed 7   # larger measured window
//	accbench -trajectory BENCH_trajectory.json
//	                               # also append a git-SHA-tagged run record
//	accbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                               # pprof profiles of the measured window
//	accbench -shards 4             # sharded-engine benchmark: a 2304-host
//	                               # fabric on the sequential vs the K-shard
//	                               # parallel engine, written to -shard-out
//	accbench -shards 4 -shard-leaves 8 -shard-hosts 16 -shard-spines 4
//	                               # smaller sharded geometry (CI smoke)
//	accbench -workload-spec default
//	                               # workload-engine benchmark: expand the
//	                               # built-in three-class mix (or a spec file
//	                               # path) and run it end to end on the sharded
//	                               # engine, written to -workload-out
//	accbench -fidelity hybrid      # hybrid fast-path benchmark: the 2304-host
//	                               # uncongested workload at packet fidelity vs
//	                               # the flow-level fast-forward engine, written
//	                               # to -hybrid-out (BENCH_hybrid.json)
//	accbench -sweep 16             # warm-vs-cold sweep benchmark: a 16-branch
//	                               # warmup-dominated WRED matrix via the cold
//	                               # executor (per-branch warmup) and the warm
//	                               # executor (snapshot once, fork), written to
//	                               # -sweep-out (BENCH_sweep.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/accnet/acc/internal/perf"
	"github.com/accnet/acc/internal/simtime"
)

// trajectoryRun is one entry in the BENCH_trajectory.json array: a CoreResult
// tagged with enough provenance (commit, date, configuration, machine
// parallelism) to plot engine throughput over the history of the repository.
type trajectoryRun struct {
	Commit     string  `json:"commit"`
	Date       string  `json:"date"` // RFC 3339, UTC
	Seed       int64   `json:"seed"`
	WarmupUsec float64 `json:"warmup_usec"`
	WindowUsec float64 `json:"window_usec"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	// MaxProcs records the parallelism the run could use; comparisons across
	// machines (or cgroup limits) are only honest within the same value.
	MaxProcs int `json:"maxprocs"`
	// Note flags measurement conditions that undermine the record — e.g.
	// maxprocs=1, where any parallel-engine speedup in the same session
	// measured synchronization overhead rather than scaling.
	Note   string          `json:"note,omitempty"`
	Result perf.CoreResult `json:"result"`
	// Fidelity tags hybrid fast-path records ("hybrid"); empty for the
	// packet-level core benchmark. Hybrid carries the full packet-vs-hybrid
	// comparison for such records.
	Fidelity string             `json:"fidelity,omitempty"`
	Hybrid   *perf.HybridResult `json:"hybrid,omitempty"`
	// Sweep carries warm-vs-cold sweep executor records (Fidelity "sweep");
	// Result is zero for such records — the measurand is scenarios/sec, not
	// events/sec.
	Sweep *perf.SweepResult `json:"sweep,omitempty"`
}

// gitShortSHA returns the current commit's short SHA, or "unknown" when git
// or the repository is unavailable (e.g. running from an exported tree).
func gitShortSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendTrajectory reads the existing run array (if any), appends run, and
// rewrites the file. A missing file starts a new trajectory; a corrupt file
// is an error rather than silent data loss.
func appendTrajectory(path string, run trajectoryRun) error {
	var runs []trajectoryRun
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &runs); err != nil {
			return fmt.Errorf("existing trajectory %s is not a run array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, run)
	buf, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accbench:", err)
	os.Exit(1)
}

func main() {
	o := perf.DefaultCoreOptions()
	var (
		out        = flag.String("out", "BENCH_core.json", "output path ('-' = stdout only)")
		seed       = flag.Int64("seed", o.Seed, "simulation seed")
		window     = flag.Duration("window", time.Duration(o.Window), "measured span of virtual time")
		warmup     = flag.Duration("warmup", time.Duration(o.Warmup), "virtual warmup before measuring")
		trajectory = flag.String("trajectory", "", "append a git-SHA-tagged run record to this JSON array file")
		commit     = flag.String("commit", "", "commit id for the trajectory record (default: git rev-parse --short HEAD)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measured window to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	ho := perf.DefaultHybridOptions()
	var (
		fidelity     = flag.String("fidelity", "", "'hybrid': also run the hybrid fast-path benchmark (packet vs flow-level fast-forward) and write -hybrid-out")
		hybridOut    = flag.String("hybrid-out", "BENCH_hybrid.json", "hybrid benchmark output path ('-' = stdout only)")
		hybridwindow = flag.Duration("hybrid-window", time.Duration(ho.Window), "hybrid benchmark: measured span of virtual time")
		hybridWarmup = flag.Duration("hybrid-warmup", time.Duration(ho.Warmup), "hybrid benchmark: virtual warmup before measuring")
	)
	wo := perf.DefaultWorkloadOptions()
	var (
		workloadSpec = flag.String("workload-spec", "", "also run the workload-engine benchmark with this spec file ('default' = built-in three-class mix, '' = skip)")
		workloadOut  = flag.String("workload-out", "BENCH_workload.json", "workload benchmark output path ('-' = stdout only)")
	)
	var (
		sweepN   = flag.Int("sweep", 0, "also run the warm-vs-cold sweep benchmark with this many branches (0 = skip)")
		sweepOut = flag.String("sweep-out", "BENCH_sweep.json", "sweep benchmark output path ('-' = stdout only)")
	)
	so := perf.DefaultShardOptions()
	var (
		shards      = flag.Int("shards", 0, "also run the sharded-engine benchmark with this many shards (0 = skip)")
		shardOut    = flag.String("shard-out", "BENCH_shard.json", "sharded benchmark output path ('-' = stdout only)")
		shardLeaves = flag.Int("shard-leaves", so.Leaves, "sharded benchmark: leaf switches")
		shardHosts  = flag.Int("shard-hosts", so.HostsPerLeaf, "sharded benchmark: hosts per leaf")
		shardSpines = flag.Int("shard-spines", so.Spines, "sharded benchmark: spine switches")
		shardWindow = flag.Duration("shard-window", time.Duration(so.Window), "sharded benchmark: measured span of virtual time")
		shardWarmup = flag.Duration("shard-warmup", time.Duration(so.Warmup), "sharded benchmark: virtual warmup before measuring")
	)
	flag.Parse()
	o.Seed = *seed
	o.Window = simtime.Duration(*window)
	o.Warmup = simtime.Duration(*warmup)
	switch *fidelity {
	case "", "packet", "hybrid":
	default:
		fatal(fmt.Errorf("unknown -fidelity %q (want 'packet' or 'hybrid')", *fidelity))
	}
	// maxprocs=1 makes any parallel speedup in this session meaningless;
	// stamp the condition into every artifact rather than only stderr.
	note := ""
	if runtime.GOMAXPROCS(0) == 1 {
		note = "maxprocs=1: parallel speedups in this session measure synchronization overhead, not scaling"
		fmt.Fprintln(os.Stderr, "accbench: warning:", note)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	r := perf.RunCore(o)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	os.Stdout.Write(buf)

	if *trajectory != "" {
		id := *commit
		if id == "" {
			id = gitShortSHA()
		}
		run := trajectoryRun{
			Commit:     id,
			Date:       time.Now().UTC().Format(time.RFC3339),
			Seed:       o.Seed,
			WarmupUsec: o.Warmup.Seconds() * 1e6,
			WindowUsec: o.Window.Seconds() * 1e6,
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			MaxProcs:   runtime.GOMAXPROCS(0),
			Note:       note,
			Result:     r,
		}
		if err := appendTrajectory(*trajectory, run); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "accbench: appended run %s to %s\n", id, *trajectory)
	}

	if *fidelity == "hybrid" {
		ho.Seed = *seed
		ho.Window = simtime.Duration(*hybridwindow)
		ho.Warmup = simtime.Duration(*hybridWarmup)
		fmt.Fprintf(os.Stderr, "accbench: hybrid benchmark: %d hosts, %d senders, GOMAXPROCS=%d\n",
			ho.Leaves*ho.HostsPerLeaf, ho.Leaves*ho.SendersPerLeaf, runtime.GOMAXPROCS(0))
		hr := perf.RunHybridCore(ho)
		buf, err := json.MarshalIndent(hr, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *hybridOut != "-" {
			if err := os.WriteFile(*hybridOut, buf, 0o644); err != nil {
				fatal(err)
			}
		}
		os.Stdout.Write(buf)
		if *trajectory != "" {
			id := *commit
			if id == "" {
				id = gitShortSHA()
			}
			run := trajectoryRun{
				Commit:     id,
				Date:       time.Now().UTC().Format(time.RFC3339),
				Seed:       ho.Seed,
				WarmupUsec: ho.Warmup.Seconds() * 1e6,
				WindowUsec: ho.Window.Seconds() * 1e6,
				GoVersion:  runtime.Version(),
				GOOS:       runtime.GOOS,
				GOARCH:     runtime.GOARCH,
				MaxProcs:   runtime.GOMAXPROCS(0),
				Note:       note,
				Result:     hr.Hybrid,
				Fidelity:   "hybrid",
				Hybrid:     &hr,
			}
			if err := appendTrajectory(*trajectory, run); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "accbench: appended hybrid run %s to %s (speedup %.1fx)\n", id, *trajectory, hr.Speedup)
		}
	}

	if *workloadSpec != "" {
		wo.Seed = *seed
		if *workloadSpec != "default" {
			wo.Spec = *workloadSpec
		}
		if *shards > 0 {
			wo.Shards = *shards
		}
		wr, err := perf.RunWorkload(wo)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "accbench: workload benchmark: spec %q, %d hosts, %d flows, %d shards\n",
			wr.Spec, wr.Hosts, wr.Flows, wr.Shards)
		buf, err := json.MarshalIndent(wr, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *workloadOut != "-" {
			if err := os.WriteFile(*workloadOut, buf, 0o644); err != nil {
				fatal(err)
			}
		}
		os.Stdout.Write(buf)
	}

	if *sweepN > 0 {
		swo := perf.DefaultSweepOptions(*sweepN)
		swo.Matrix.Base.Seed = *seed
		fmt.Fprintf(os.Stderr, "accbench: sweep benchmark: %d branches, %d shards, %s fidelity, warm %gus / horizon %gus\n",
			*sweepN, swo.Matrix.Base.Shards, swo.Matrix.Base.Fidelity,
			float64(swo.Matrix.WarmPoint)/1e3, float64(swo.Matrix.Base.Horizon)/1e3)
		swr, err := perf.RunSweep(swo)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "accbench: sweep: warm %.2f scenarios/s vs cold %.2f scenarios/s (%.1fx)\n",
			swr.Warm.ScenariosPerSec, swr.Cold.ScenariosPerSec, swr.Speedup)
		buf, err := json.MarshalIndent(swr, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *sweepOut != "-" {
			if err := os.WriteFile(*sweepOut, buf, 0o644); err != nil {
				fatal(err)
			}
		}
		os.Stdout.Write(buf)
		if *trajectory != "" {
			id := *commit
			if id == "" {
				id = gitShortSHA()
			}
			run := trajectoryRun{
				Commit:    id,
				Date:      time.Now().UTC().Format(time.RFC3339),
				Seed:      swo.Matrix.Base.Seed,
				GoVersion: runtime.Version(),
				GOOS:      runtime.GOOS,
				GOARCH:    runtime.GOARCH,
				MaxProcs:  runtime.GOMAXPROCS(0),
				Note:      note,
				Fidelity:  "sweep",
				Sweep:     &swr,
			}
			if err := appendTrajectory(*trajectory, run); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "accbench: appended sweep run %s to %s (speedup %.1fx)\n", id, *trajectory, swr.Speedup)
		}
	}

	if *shards > 0 {
		so.Seed = *seed
		so.Shards = *shards
		so.Leaves = *shardLeaves
		so.HostsPerLeaf = *shardHosts
		so.Spines = *shardSpines
		so.Window = simtime.Duration(*shardWindow)
		so.Warmup = simtime.Duration(*shardWarmup)
		fmt.Fprintf(os.Stderr, "accbench: sharded benchmark: %d hosts, %d shards, GOMAXPROCS=%d\n",
			so.Leaves*so.HostsPerLeaf, so.Shards, runtime.GOMAXPROCS(0))
		sr := perf.RunShardedCore(so)
		buf, err := json.MarshalIndent(sr, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *shardOut != "-" {
			if err := os.WriteFile(*shardOut, buf, 0o644); err != nil {
				fatal(err)
			}
		}
		os.Stdout.Write(buf)
	}
}
