// Command acctrain runs ACC's offline pre-training (§4.3) over the
// synthetic workload suite and saves the resulting model, ready to be
// installed on switches (loaded by the library or by accsim runs).
//
// Usage:
//
//	acctrain -o models/pretrained.json -episodes 50
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/simtime"
)

func main() {
	var (
		out      = flag.String("o", "acc-model.json", "output model path")
		episodes = flag.Int("episodes", 30, "training episodes")
		epTime   = flag.Duration("episode-time", 10*time.Millisecond, "virtual time per episode")
		seed     = flag.Int64("seed", 1, "training seed")
		senders  = flag.Int("max-senders", 12, "max incast senders per episode")
		flows    = flag.Int("max-flows", 16, "max flows per sender per episode")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := acc.DefaultOfflineConfig()
	cfg.Episodes = *episodes
	cfg.EpisodeTime = simtime.Duration(epTime.Nanoseconds())
	cfg.Seed = *seed
	cfg.MaxSenders = *senders
	cfg.MaxFlowsPerSender = *flows
	if !*quiet {
		cfg.Progress = func(ep int, eps float64) {
			fmt.Printf("\repisode %d/%d  epsilon=%.3f", ep+1, cfg.Episodes, eps)
		}
	}

	t0 := time.Now()
	agent := acc.TrainOffline(cfg)
	if !*quiet {
		fmt.Println()
	}

	desc := fmt.Sprintf("ACC offline model: %d episodes x %v, seed %d, trained %s",
		cfg.Episodes, cfg.EpisodeTime, cfg.Seed, time.Now().UTC().Format(time.RFC3339))
	if err := acc.SaveModel(*out, desc, agent, acc.DefaultConfig()); err != nil {
		fmt.Fprintln(os.Stderr, "acctrain:", err)
		os.Exit(1)
	}
	fmt.Printf("trained %d episodes in %v; %d transitions in memory; model -> %s\n",
		cfg.Episodes, time.Since(t0).Round(time.Millisecond), agent.Memory.Len(), *out)
}
