// Command accsim regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	accsim -list                   # show available experiments
//	accsim -exp fig7               # run one experiment
//	accsim -exp all                # run everything
//	accsim -exp fig12 -scale 4     # paper-scale fabric/durations
//	accsim -exp fig9 -csv          # machine-readable output
//	accsim -exp fig8 -fidelity hybrid
//	                               # flow-level fast-forward with packet-level
//	                               # hotspot demotion (<=1% FCT tolerance)
//
// The workload engine (mix-spec, mix-replay, mix-collective) drives
// spec-defined multi-client traffic and can record/replay flow traces:
//
//	accsim -exp mix-spec -workload-spec spec.json   # custom client classes
//	accsim -exp mix-spec -record-trace mix.bin      # record as-executed trace
//	accsim -exp mix-spec -replay-trace mix.bin -shards 4
//	                               # bit-identical replay on the sharded engine
//	accsim -exp mix-replay -fidelity hybrid         # self-checking replay
//
// The robustness suite (robust-linkfail, robust-flap, robust-telemetry)
// reads the -fault-* flags to shape its fault plan:
//
//	accsim -exp robust-linkfail -seed 1
//	accsim -exp robust-flap -fault-links 3 -fault-mtbf 2ms -fault-mttr 500us
//	accsim -exp robust-telemetry -fault-stale 8 -fault-drop 0.5
//
// Observability (internal/obs) is off by default and enabled by flag:
//
//	accsim -exp fig8 -obs-dir out          # write <exp>.manifest.json,
//	                                       # <exp>.trace.jsonl, <exp>.metrics.prom
//	accsim -exp fig12 -obs-addr :9090      # live /metrics, /manifest,
//	                                       # /trace?last=N, /debug/pprof while running
//
// The snapshot world (internal/snap, internal/sweep) runs without -exp:
//
//	accsim -snapshot w.accsnap -snap-at 300us -shards 4 -fidelity hybrid
//	                               # run the canonical snapshot scenario, freeze
//	                               # it mid-run to a file, continue to the
//	                               # horizon, print the outcome digest
//	accsim -resume w.accsnap       # rebuild from the file alone and run to the
//	                               # horizon — the digest matches the line above
//	accsim -sweep 8 -sweep-out out -shards 4 -fidelity hybrid
//	                               # warm-fork and cold sweeps of an 8-branch
//	                               # WRED matrix; writes byte-identical
//	                               # sweep_warm.csv / sweep_cold.csv plus
//	                               # per-branch obs manifests into out/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/accnet/acc/internal/exp"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap"
	"github.com/accnet/acc/internal/sweep"
	"github.com/accnet/acc/internal/workload"
)

// snapScenario is the canonical snapshot-world scenario the -snapshot,
// -resume, and -sweep modes run: a congested mixed TCP/DCQCN fabric with
// a 600 us horizon, parameterized by the shared -seed/-shards/-fidelity
// flags. -resume does not consult it — the scenario rides inside the
// snapshot file.
func snapScenario(seed int64, shards int, fidelity string) snap.Scenario {
	if shards <= 0 {
		shards = 1
	}
	return snap.Scenario{
		NLeaf: 4, HostsPerLeaf: 3, NSpine: 2, Shards: shards,
		Seed:  seed,
		Flows: 96, MaxBytes: 96 * simtime.KB, Spread: 500 * simtime.Microsecond, MixTCP: true,
		Horizon:  simtime.Time(600 * simtime.Microsecond),
		Fidelity: fidelity,
	}
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		expID    = flag.String("exp", "", "experiment id (or 'all')")
		seed     = flag.Int64("seed", 1, "simulation seed")
		scale    = flag.Float64("scale", 1, "duration/fabric scale factor (>=4 restores paper-scale fabrics)")
		episodes = flag.Int("episodes", 0, "offline pre-training episodes for ACC policies (0 = default)")
		shards   = flag.Int("shards", 0, "drive experiments at the N-shard barrier cadence (tables are byte-identical to sequential; see DESIGN.md 'Parallel simulation')")
		fidelity = flag.String("fidelity", "", "simulation fidelity: ''/'packet' = byte-identical packet engine, 'hybrid' = flow-level fast-forward with packet-level hotspot demotion (see DESIGN.md 'Hybrid fidelity')")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		faultMTBF    = flag.Duration("fault-mtbf", 0, "robust-flap: mean up time between failures (0 = experiment default)")
		faultMTTR    = flag.Duration("fault-mttr", 0, "robust-flap: mean down time until repair (0 = experiment default)")
		faultLinks   = flag.Int("fault-links", 0, "robust-flap: number of leaf-spine links to flap (0 = experiment default)")
		faultStale   = flag.Int("fault-stale", 0, "robust-telemetry: observation staleness in monitoring slots")
		faultDrop    = flag.Float64("fault-drop", 0, "robust-telemetry: per-window telemetry loss probability [0,1)")
		faultDegrade = flag.Float64("fault-degrade", 0, "robust-linkfail: brownout a second uplink to this fraction of nominal bandwidth (0 = off)")

		obsAddr = flag.String("obs-addr", "", "serve live introspection (/metrics, /manifest, /trace, /debug/pprof) on this address")
		obsDir  = flag.String("obs-dir", "", "write per-experiment manifest/trace/metrics files into this directory")
		obsRing = flag.Int("obs-ring", 0, "trace ring capacity in records (0 = default 65536)")

		workloadSpec = flag.String("workload-spec", "", "mix-*: JSON workload spec file (multi-client classes; see DESIGN.md 'Workload engine')")
		recordTrace  = flag.String("record-trace", "", "mix-*: record the as-executed flow trace to this file (.bin = binary, else JSONL)")
		replayTrace  = flag.String("replay-trace", "", "mix-*: replay a recorded flow trace instead of generating traffic")

		snapFile   = flag.String("snapshot", "", "run the canonical snapshot scenario, freeze it to this file at -snap-at, continue to the horizon, print the digest")
		snapAt     = flag.Duration("snap-at", 300*time.Microsecond, "virtual instant the -snapshot file captures (must be inside the 600us horizon)")
		resumeFile = flag.String("resume", "", "rebuild a world from this snapshot file and run it to its horizon (no -exp needed)")
		sweepN     = flag.Int("sweep", 0, "run a warm-fork and a cold sweep of an N-branch WRED matrix; writes sweep_warm.csv/sweep_cold.csv + per-branch obs manifests to -sweep-out")
		sweepOut   = flag.String("sweep-out", "sweep-out", "directory for -sweep artifacts (created if missing)")
	)
	flag.Parse()

	switch *fidelity {
	case "", "packet", "hybrid":
	default:
		fmt.Fprintf(os.Stderr, "accsim: unknown -fidelity %q (want 'packet' or 'hybrid')\n", *fidelity)
		os.Exit(2)
	}

	// Snapshot-world modes run without -exp. Preflight their file arguments
	// first: a bad path or corrupt image is a user error and deserves a clean
	// one-line diagnostic before any simulation work, like -workload-spec.
	if *resumeFile != "" {
		data, sc, err := snap.ReadFile(*resumeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -resume:", err)
			os.Exit(2)
		}
		w, err := snap.Restore(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -resume:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "accsim: resumed %s at %v (fidelity %q, %d shards)\n",
			*resumeFile, w.Now(), sc.Fidelity, sc.Shards)
		w.Run(sc.Horizon)
		s := w.Summarize()
		fmt.Printf("digest %016x flows %d/%d marks %d drops %d events %d\n",
			s.Digest, s.FlowsCompleted, s.FlowsOffered, s.Marks, s.Drops, s.Processed)
		return
	}
	if *snapFile != "" {
		if dir := filepath.Dir(*snapFile); dir != "." {
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				fmt.Fprintf(os.Stderr, "accsim: -snapshot: directory %s does not exist\n", dir)
				os.Exit(2)
			}
		}
		sc := snapScenario(*seed, *shards, *fidelity)
		at := simtime.Time(simtime.Duration((*snapAt).Nanoseconds()))
		if at <= 0 || at >= sc.Horizon {
			fmt.Fprintf(os.Stderr, "accsim: -snap-at: %v outside (0, %v)\n", *snapAt, sc.Horizon)
			os.Exit(2)
		}
		w, err := snap.Build(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -snapshot:", err)
			os.Exit(1)
		}
		w.Run(at)
		img := w.Snapshot()
		if err := snap.WriteFile(*snapFile, img); err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -snapshot:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "accsim: snapshot %s at %v (%d bytes); continuing to %v\n",
			*snapFile, at, len(img), sc.Horizon)
		w.Run(sc.Horizon)
		s := w.Summarize()
		fmt.Printf("digest %016x flows %d/%d marks %d drops %d events %d\n",
			s.Digest, s.FlowsCompleted, s.FlowsOffered, s.Marks, s.Drops, s.Processed)
		return
	}
	if *sweepN > 0 {
		if err := os.MkdirAll(*sweepOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -sweep-out:", err)
			os.Exit(2)
		}
		m := sweep.Matrix{
			Base:      snapScenario(*seed, *shards, *fidelity),
			WarmPoint: simtime.Time(300 * simtime.Microsecond),
			Branches:  sweep.WREDLadder(*sweepN),
		}
		opts := sweep.Options{Parallel: runtime.GOMAXPROCS(0), ObsDir: *sweepOut}
		warm, err := sweep.RunWarm(m, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -sweep:", err)
			os.Exit(1)
		}
		cold, err := sweep.RunCold(m, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -sweep:", err)
			os.Exit(1)
		}
		for name, r := range map[string]*sweep.Result{"sweep_warm.csv": warm, "sweep_cold.csv": cold} {
			if err := os.WriteFile(filepath.Join(*sweepOut, name), []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "accsim: -sweep:", err)
				os.Exit(1)
			}
		}
		if ok, who := sweep.Equal(warm, cold); !ok {
			fmt.Fprintf(os.Stderr, "accsim: -sweep: warm fork diverged from cold run at branch %s\n", who)
			os.Exit(1)
		}
		fmt.Printf("# sweep (%d branches, %d shards, fidelity %q): warm fork == cold run\n%s",
			*sweepN, m.Base.Shards, m.Base.Fidelity, warm.CSV())
		return
	}

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.List() {
			fmt.Printf("  %-18s %s\n", e[0], e[1])
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *expID != "all" {
		known := false
		for _, e := range exp.List() {
			if e[0] == *expID {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "accsim: unknown experiment %q; valid experiments:\n", *expID)
			for _, e := range exp.List() {
				fmt.Fprintf(os.Stderr, "  %-18s %s\n", e[0], e[1])
			}
			os.Exit(2)
		}
	}
	// Preflight the workload files: a malformed spec or trace is a user
	// error and deserves a clean one-line diagnostic, not a panic from deep
	// inside the experiment.
	if *workloadSpec != "" {
		if _, err := workload.ReadSpecFile(*workloadSpec); err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -workload-spec:", err)
			os.Exit(2)
		}
	}
	if *replayTrace != "" {
		if _, err := workload.ReadTraceFile(*replayTrace); err != nil {
			fmt.Fprintln(os.Stderr, "accsim: -replay-trace:", err)
			os.Exit(2)
		}
	}
	opts := exp.Options{
		Seed: *seed, Scale: *scale, OfflineEpisodes: *episodes, Shards: *shards,
		Fidelity:     *fidelity,
		WorkloadSpec: *workloadSpec, RecordTrace: *recordTrace, ReplayTrace: *replayTrace,
		Faults: exp.FaultOptions{
			MTBF:     simtime.Duration((*faultMTBF).Nanoseconds()),
			MTTR:     simtime.Duration((*faultMTTR).Nanoseconds()),
			Links:    *faultLinks,
			Stale:    *faultStale,
			DropProb: *faultDrop,
			Degrade:  *faultDegrade,
		},
	}
	obsOn := *obsAddr != "" || *obsDir != ""
	var server *obs.Server
	if *obsAddr != "" {
		server = obs.NewServer(nil)
		go func() {
			if err := http.ListenAndServe(*obsAddr, server.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "accsim: obs server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "accsim: introspection on http://%s (/metrics /manifest /trace /debug/pprof)\n", *obsAddr)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = ids[:0]
		for _, e := range exp.List() {
			ids = append(ids, e[0])
		}
	}
	for _, id := range ids {
		t0 := time.Now()
		runOpts := opts
		var run *obs.Run
		if obsOn {
			run = obs.NewRun(*obsRing)
			runOpts.Obs = run
			if server != nil {
				server.SetRun(run)
			}
		}
		tables, err := exp.Run(id, runOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accsim:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t)
			}
		}
		if *obsDir != "" {
			// WriteFiles re-parses everything it writes, so a zero exit
			// means the artifacts are loadable — CI leans on that.
			manifest, trace, metrics, err := run.WriteFiles(*obsDir, id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "accsim: obs artifacts:", err)
				os.Exit(1)
			}
			m := run.Manifest()
			fmt.Fprintf(os.Stderr, "accsim: obs artifacts for %s: %s %s %s (%d trace records, %d events)\n",
				id, manifest, trace, metrics, m.TraceEmitted, m.EventsProcessed)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
